// Legacy 802.1Q switch behaviour: classification, learning, flooding,
// VLAN isolation, trunk tagging — and the emergent hairpin property
// HARMLESS builds on.
#include <gtest/gtest.h>

#include "legacy/legacy_switch.hpp"
#include "sim/network.hpp"

namespace harmless::legacy {
namespace {

using namespace net;
using sim::Host;
using sim::LinkSpec;
using sim::Network;

SwitchConfig two_access_one_vlan() {
  SwitchConfig config;
  config.hostname = "sw1";
  config.ports[1] = PortConfig{PortMode::kAccess, 10, {}, std::nullopt, true, ""};
  config.ports[2] = PortConfig{PortMode::kAccess, 10, {}, std::nullopt, true, ""};
  config.ports[3] = PortConfig{PortMode::kAccess, 20, {}, std::nullopt, true, ""};
  return config;
}

struct Rig {
  Network network;
  LegacySwitch* sw;
  Host* h1;
  Host* h2;
  Host* h3;

  explicit Rig(SwitchConfig config) {
    sw = &network.add_node<LegacySwitch>("sw", std::move(config));
    h1 = &network.add_host("h1", MacAddr::from_u64(0x1), Ipv4Addr(10, 0, 0, 1));
    h2 = &network.add_host("h2", MacAddr::from_u64(0x2), Ipv4Addr(10, 0, 0, 2));
    h3 = &network.add_host("h3", MacAddr::from_u64(0x3), Ipv4Addr(10, 0, 0, 3));
    network.connect(*h1, 0, *sw, 0, LinkSpec::gbps(1));
    network.connect(*h2, 0, *sw, 1, LinkSpec::gbps(1));
    network.connect(*h3, 0, *sw, 2, LinkSpec::gbps(1));
  }

  Packet udp_h1_to_h2(std::size_t size = 100) {
    FlowKey key;
    key.eth_src = h1->mac();
    key.eth_dst = h2->mac();
    key.ip_src = h1->ip();
    key.ip_dst = h2->ip();
    return make_udp(key, size);
  }
};

TEST(SwitchConfig, ValidateCatchesBadConfigs) {
  SwitchConfig config = two_access_one_vlan();
  EXPECT_TRUE(config.validate().is_ok());

  config.ports[1].pvid = 0;
  EXPECT_FALSE(config.validate().is_ok());

  config = two_access_one_vlan();
  config.ports[0] = PortConfig{};  // 0 is not 1-based
  EXPECT_FALSE(config.validate().is_ok());

  config = two_access_one_vlan();
  config.ports[4] = PortConfig{PortMode::kTrunk, 1, {}, std::nullopt, true, ""};
  EXPECT_FALSE(config.validate().is_ok());  // trunk with no VLANs

  config.ports[4].allowed_vlans = {4095};
  EXPECT_FALSE(config.validate().is_ok());  // reserved vid
}

TEST(SwitchConfig, VlanQueriesAndRendering) {
  const SwitchConfig config = two_access_one_vlan();
  EXPECT_EQ(config.ports_in_vlan(10), (std::set<int>{1, 2}));
  EXPECT_EQ(config.ports_in_vlan(20), (std::set<int>{3}));
  EXPECT_EQ(config.all_vlans(), (std::set<VlanId>{10, 20}));
  const std::string text = config.to_text();
  EXPECT_NE(text.find("switchport access vlan 10"), std::string::npos);
}

TEST(LegacySwitch, FloodsUnknownThenForwardsLearned) {
  Rig rig(two_access_one_vlan());
  // First frame h1->h2: dst unknown, floods to h2 (same VLAN) only.
  rig.network.engine().schedule_at(0, [&] { rig.h1->send(rig.udp_h1_to_h2()); });
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_udp, 1u);
  EXPECT_EQ(rig.h3->counters().rx_udp, 0u);  // different VLAN
  EXPECT_EQ(rig.sw->counters().flooded, 1u);

  // h2 replies: h1's MAC is now learned, so no flood.
  FlowKey reply;
  reply.eth_src = rig.h2->mac();
  reply.eth_dst = rig.h1->mac();
  reply.ip_src = rig.h2->ip();
  reply.ip_dst = rig.h1->ip();
  rig.h2->send(make_udp(reply, 100));
  rig.network.run();
  EXPECT_EQ(rig.h1->counters().rx_udp, 1u);
  EXPECT_EQ(rig.sw->counters().forwarded, 1u);

  // Third frame h1->h2 is now unicast-forwarded too.
  rig.h1->send(rig.udp_h1_to_h2());
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_udp, 2u);
  EXPECT_EQ(rig.sw->counters().forwarded, 2u);
  EXPECT_EQ(rig.sw->counters().flooded, 1u);
}

TEST(LegacySwitch, VlanIsolationBlocksCrossVlanUnicast) {
  Rig rig(two_access_one_vlan());
  FlowKey key;
  key.eth_src = rig.h1->mac();
  key.eth_dst = rig.h3->mac();  // h3 is in VLAN 20
  key.ip_src = rig.h1->ip();
  key.ip_dst = rig.h3->ip();
  rig.h1->send(make_udp(key, 100));
  rig.network.run();
  EXPECT_EQ(rig.h3->counters().rx_udp, 0u);
}

TEST(LegacySwitch, BroadcastStaysInVlan) {
  Rig rig(two_access_one_vlan());
  rig.h1->arp_request(Ipv4Addr(10, 0, 0, 99));
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_total, 1u);
  EXPECT_EQ(rig.h3->counters().rx_total, 0u);
}

TEST(LegacySwitch, TaggedFrameOnAccessPortDropped) {
  Rig rig(two_access_one_vlan());
  Packet packet = rig.udp_h1_to_h2();
  vlan_push(packet.frame(), VlanTag{10, 0, false});
  rig.h1->send(std::move(packet));
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_total, 0u);
  EXPECT_EQ(rig.sw->counters().ingress_filtered, 1u);
}

TEST(LegacySwitch, DisabledPortFiltersIngress) {
  SwitchConfig config = two_access_one_vlan();
  config.ports[1].enabled = false;
  Rig rig(std::move(config));
  rig.h1->send(rig.udp_h1_to_h2());
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_total, 0u);
  EXPECT_EQ(rig.sw->counters().ingress_filtered, 1u);
}

// --- trunk behaviour -----------------------------------------------------

SwitchConfig access_plus_trunk() {
  SwitchConfig config;
  config.hostname = "sw-trunk";
  config.ports[1] = PortConfig{PortMode::kAccess, 101, {}, std::nullopt, true, ""};
  config.ports[2] = PortConfig{PortMode::kAccess, 102, {}, std::nullopt, true, ""};
  config.ports[3] = PortConfig{PortMode::kTrunk, 1, {101, 102}, std::nullopt, true, ""};
  return config;
}

TEST(LegacySwitch, TrunkEgressCarriesAccessVlanTag) {
  Rig rig(access_plus_trunk());  // h3 now hangs off the trunk port
  rig.h3->set_promiscuous(true);  // trunk observer sees others' frames
  std::optional<VlanId> seen_vid;
  rig.h3->set_on_receive([&](const Packet&, const ParsedPacket& parsed) {
    if (parsed.udp) seen_vid = parsed.vlan_vid();
  });
  // h1 -> unknown dst: floods; the only same-VLAN egress is the trunk.
  rig.h1->send(rig.udp_h1_to_h2());
  rig.network.run();
  ASSERT_TRUE(seen_vid.has_value());
  EXPECT_EQ(*seen_vid, 101);  // tagged with the ingress port's PVID
}

TEST(LegacySwitch, TrunkIngressRespectsAllowedList) {
  Rig rig(access_plus_trunk());
  // Tag 101 -> delivered untagged to h1.
  FlowKey key;
  key.eth_src = rig.h3->mac();
  key.eth_dst = rig.h1->mac();
  key.ip_src = rig.h3->ip();
  key.ip_dst = rig.h1->ip();
  // Let the switch learn h1 first.
  rig.h1->send(rig.udp_h1_to_h2());
  rig.network.run();

  Packet allowed = make_udp(key, 100);
  vlan_push(allowed.frame(), VlanTag{101, 0, false});
  rig.h3->send(std::move(allowed));
  rig.network.run();
  EXPECT_EQ(rig.h1->counters().rx_udp, 1u);
  // Delivered frame must be untagged (access egress strips).
  bool untagged = false;
  for (const auto& parsed : rig.h1->rx_log())
    if (parsed.udp) untagged = !parsed.has_vlan();
  EXPECT_TRUE(untagged);

  // Tag 999 is not allowed: filtered at trunk ingress.
  Packet filtered = make_udp(key, 100);
  vlan_push(filtered.frame(), VlanTag{999, 0, false});
  rig.h3->send(std::move(filtered));
  rig.network.run();
  EXPECT_EQ(rig.h1->counters().rx_udp, 1u);  // unchanged
  EXPECT_GE(rig.sw->counters().ingress_filtered, 1u);
}

TEST(LegacySwitch, UntaggedOnTrunkWithoutNativeDropped) {
  Rig rig(access_plus_trunk());
  FlowKey key;
  key.eth_src = rig.h3->mac();
  key.eth_dst = rig.h1->mac();
  rig.h3->send(make_udp(key, 100));
  rig.network.run();
  EXPECT_EQ(rig.sw->counters().ingress_filtered, 1u);
}

TEST(LegacySwitch, NativeVlanRidesUntagged) {
  SwitchConfig config = access_plus_trunk();
  config.ports[3].native_vlan = 101;
  Rig rig(std::move(config));
  rig.h3->set_promiscuous(true);
  // h1 (vlan 101) -> flood reaches trunk *untagged* now.
  std::optional<bool> tagged;
  rig.h3->set_on_receive([&](const Packet&, const ParsedPacket& parsed) {
    if (parsed.udp) tagged = parsed.has_vlan();
  });
  rig.h1->send(rig.udp_h1_to_h2());
  rig.network.run();
  ASSERT_TRUE(tagged.has_value());
  EXPECT_FALSE(*tagged);
}

// --- the HARMLESS precondition -------------------------------------------

TEST(LegacySwitch, UniquePvidsForceAllTrafficToTrunk) {
  // Per-port unique VLANs (the HARMLESS config): hosts can never talk
  // directly through the legacy switch; everything surfaces tagged on
  // the trunk. This is the paper's tagging half of §2 working with
  // zero special-case code in the switch model.
  SwitchConfig config;
  config.ports[1] = PortConfig{PortMode::kAccess, 101, {}, std::nullopt, true, ""};
  config.ports[2] = PortConfig{PortMode::kAccess, 102, {}, std::nullopt, true, ""};
  config.ports[3] = PortConfig{PortMode::kTrunk, 1, {101, 102}, std::nullopt, true, ""};
  Rig rig(std::move(config));
  rig.h3->set_promiscuous(true);

  std::vector<VlanId> trunk_tags;
  rig.h3->set_on_receive([&](const Packet&, const ParsedPacket& parsed) {
    if (parsed.udp) trunk_tags.push_back(parsed.vlan_vid());
  });

  rig.h1->send(rig.udp_h1_to_h2());
  rig.network.run();
  FlowKey reverse;
  reverse.eth_src = rig.h2->mac();
  reverse.eth_dst = rig.h1->mac();
  rig.h2->send(make_udp(reverse, 100));
  rig.network.run();

  // Hosts never hear each other...
  EXPECT_EQ(rig.h1->counters().rx_udp, 0u);
  EXPECT_EQ(rig.h2->counters().rx_udp, 0u);
  // ...but the trunk saw both frames, each tagged with its ingress
  // port's unique VLAN.
  EXPECT_EQ(trunk_tags, (std::vector<VlanId>{101, 102}));
}

TEST(LegacySwitch, ApplyConfigFlushesLearnedState) {
  Rig rig(two_access_one_vlan());
  rig.h1->send(rig.udp_h1_to_h2());
  rig.network.run();
  EXPECT_GT(rig.sw->mac_table().size(), 0u);
  rig.sw->apply_config(two_access_one_vlan());
  EXPECT_EQ(rig.sw->mac_table().size(), 0u);
}

TEST(LegacySwitch, ApplyInvalidConfigThrows) {
  Rig rig(two_access_one_vlan());
  SwitchConfig bad = two_access_one_vlan();
  bad.ports[1].pvid = 0;
  EXPECT_THROW(rig.sw->apply_config(bad), util::ConfigError);
}

TEST(LegacySwitch, ChargesAsicCostsToPackets) {
  Rig rig(two_access_one_vlan());
  sim::LatencyRecorder recorder;
  rig.h1->set_recorder(&recorder);
  rig.h2->set_recorder(&recorder);
  rig.h1->send(rig.udp_h1_to_h2());
  rig.network.run();
  ASSERT_EQ(recorder.completed(), 1u);
  EXPECT_GT(recorder.processing().mean(), 0.0);
  EXPECT_EQ(recorder.hops().mean(), 1.0);  // exactly one switch hop
}

}  // namespace
}  // namespace harmless::legacy

// MAC learning table tests: learning, per-VLAN isolation, aging,
// station moves, port flush, capacity.
#include <gtest/gtest.h>

#include "legacy/mac_table.hpp"

namespace harmless::legacy {
namespace {

using net::MacAddr;

const MacAddr kMacA = MacAddr::from_u64(0xa);
const MacAddr kMacB = MacAddr::from_u64(0xb);

TEST(MacTable, LearnAndLookup) {
  MacTable table;
  table.learn(101, kMacA, 3, 0);
  EXPECT_EQ(table.lookup(101, kMacA, 1), 3);
  EXPECT_FALSE(table.lookup(101, kMacB, 1).has_value());
  EXPECT_EQ(table.size(), 1u);
}

TEST(MacTable, VlansAreIndependent) {
  MacTable table;
  table.learn(101, kMacA, 1, 0);
  table.learn(102, kMacA, 2, 0);
  EXPECT_EQ(table.lookup(101, kMacA, 0), 1);
  EXPECT_EQ(table.lookup(102, kMacA, 0), 2);
  EXPECT_FALSE(table.lookup(103, kMacA, 0).has_value());
}

TEST(MacTable, EntriesAgeOut) {
  MacTable table(/*aging=*/1000);
  table.learn(1, kMacA, 5, 0);
  EXPECT_TRUE(table.lookup(1, kMacA, 999).has_value());
  EXPECT_FALSE(table.lookup(1, kMacA, 1001).has_value());
}

TEST(MacTable, RelearnRefreshesAge) {
  MacTable table(/*aging=*/1000);
  table.learn(1, kMacA, 5, 0);
  table.learn(1, kMacA, 5, 900);
  EXPECT_TRUE(table.lookup(1, kMacA, 1800).has_value());
  EXPECT_FALSE(table.lookup(1, kMacA, 2000).has_value());
}

TEST(MacTable, ZeroAgingMeansNever) {
  MacTable table(/*aging=*/0);
  table.learn(1, kMacA, 5, 0);
  EXPECT_TRUE(table.lookup(1, kMacA, INT64_MAX / 2).has_value());
}

TEST(MacTable, StationMoveUpdatesPortAndCounts) {
  MacTable table;
  table.learn(1, kMacA, 5, 0);
  table.learn(1, kMacA, 9, 10);
  EXPECT_EQ(table.lookup(1, kMacA, 10), 9);
  EXPECT_EQ(table.moves(), 1u);
}

TEST(MacTable, FlushPortRemovesOnlyThatPort) {
  MacTable table;
  table.learn(1, kMacA, 5, 0);
  table.learn(1, kMacB, 6, 0);
  table.flush_port(5);
  EXPECT_FALSE(table.lookup(1, kMacA, 0).has_value());
  EXPECT_EQ(table.lookup(1, kMacB, 0), 6);
}

TEST(MacTable, CapacityFullDropsNewEntries) {
  MacTable table(/*aging=*/0, /*capacity=*/2);
  table.learn(1, MacAddr::from_u64(1), 1, 0);
  table.learn(1, MacAddr::from_u64(2), 2, 0);
  table.learn(1, MacAddr::from_u64(3), 3, 0);  // dropped
  EXPECT_EQ(table.size(), 2u);
  EXPECT_FALSE(table.lookup(1, MacAddr::from_u64(3), 0).has_value());
  // Existing entries still refresh at capacity.
  table.learn(1, MacAddr::from_u64(1), 7, 0);
  EXPECT_EQ(table.lookup(1, MacAddr::from_u64(1), 0), 7);
}

TEST(MacTable, ClearEmptiesEverything) {
  MacTable table;
  table.learn(1, kMacA, 5, 0);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.lookup(1, kMacA, 0).has_value());
}

}  // namespace
}  // namespace harmless::legacy

// Controller framework tests: handshake, app dispatch, learning-switch
// behaviour end-to-end on a SoftSwitch, static flows.
#include <gtest/gtest.h>

#include "controller/apps/learning.hpp"
#include "controller/apps/monitor.hpp"
#include "controller/apps/static_flows.hpp"
#include "controller/controller.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"

namespace harmless::controller {
namespace {

using namespace net;
using namespace openflow;
using sim::Host;
using sim::LinkSpec;
using sim::Network;
using softswitch::SoftSwitch;

struct Rig {
  Network network;
  SoftSwitch* sw;
  std::unique_ptr<ControlChannel> channel;
  Host* h1;
  Host* h2;
  Host* h3;

  Rig() {
    sw = &network.add_node<SoftSwitch>("ss", 0xd1, 3);
    channel = std::make_unique<ControlChannel>(network.engine(), 10'000);
    sw->attach_channel(*channel);
    h1 = &network.add_host("h1", MacAddr::from_u64(0x1), Ipv4Addr(10, 0, 0, 1));
    h2 = &network.add_host("h2", MacAddr::from_u64(0x2), Ipv4Addr(10, 0, 0, 2));
    h3 = &network.add_host("h3", MacAddr::from_u64(0x3), Ipv4Addr(10, 0, 0, 3));
    network.connect(*h1, 0, *sw, 0, LinkSpec::gbps(1));
    network.connect(*h2, 0, *sw, 1, LinkSpec::gbps(1));
    network.connect(*h3, 0, *sw, 2, LinkSpec::gbps(1));
  }

  Packet udp(Host& from, Host& to) {
    FlowKey key;
    key.eth_src = from.mac();
    key.eth_dst = to.mac();
    key.ip_src = from.ip();
    key.ip_dst = to.ip();
    key.dst_port = 9000;
    return make_udp(key, 100);
  }
};

TEST(Controller, HandshakeMakesSessionReady) {
  Rig rig;
  Controller controller("c0");
  Session& session = controller.connect(*rig.channel, "test-dp");
  EXPECT_FALSE(session.ready());
  rig.network.run();
  EXPECT_TRUE(session.ready());
  EXPECT_EQ(session.datapath_id(), 0xd1u);
  EXPECT_EQ(session.features().ports.size(), 3u);
  EXPECT_EQ(session.label(), "test-dp");
}

TEST(Controller, OnConnectFiresOncePerDatapath) {
  Rig rig;
  Controller controller;
  struct CountingApp : App {
    int connects = 0;
    const char* name() const override { return "counting"; }
    void on_connect(Session&) override { ++connects; }
  };
  auto& app = controller.add_app<CountingApp>();
  controller.connect(*rig.channel);
  rig.network.run();
  EXPECT_EQ(app.connects, 1);
}

TEST(LearningSwitch, FloodsThenLearnsThenForwards) {
  Rig rig;
  Controller controller;
  auto& app = controller.add_app<LearningSwitchApp>();
  controller.connect(*rig.channel);
  rig.network.run();  // handshake + table-miss install

  // h1 -> h2 (unknown): packet-in, flood.
  rig.h1->send(rig.udp(*rig.h1, *rig.h2));
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_udp, 1u);
  EXPECT_EQ(rig.h3->counters().rx_filtered, 1u);  // flood copy, NIC-filtered
  EXPECT_EQ(app.stats().floods, 1u);
  EXPECT_EQ(app.lookup(0xd1, rig.h1->mac()), 1u);

  // h2 -> h1 (h1 known): flow installed + packet delivered.
  rig.h2->send(rig.udp(*rig.h2, *rig.h1));
  rig.network.run();
  EXPECT_EQ(rig.h1->counters().rx_udp, 1u);
  EXPECT_EQ(app.stats().flows_installed, 1u);
  EXPECT_GE(rig.sw->pipeline().table(0).size(), 2u);  // miss + h1 flow

  // h1 -> h2 again: still needs a punt (h2's flow not installed yet)…
  rig.h1->send(rig.udp(*rig.h1, *rig.h2));
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_udp, 2u);

  // …but now both directions are in the data plane: no more punts.
  const auto punts_before = controller.stats().packet_ins;
  rig.h1->send(rig.udp(*rig.h1, *rig.h2));
  rig.h2->send(rig.udp(*rig.h2, *rig.h1));
  rig.network.run();
  EXPECT_EQ(controller.stats().packet_ins, punts_before);
  EXPECT_EQ(rig.h2->counters().rx_udp, 3u);
  EXPECT_EQ(rig.h1->counters().rx_udp, 2u);
}

TEST(LearningSwitch, BroadcastAlwaysFloods) {
  Rig rig;
  Controller controller;
  controller.add_app<LearningSwitchApp>();
  controller.connect(*rig.channel);
  rig.network.run();

  rig.h1->arp_request(rig.h3->ip());
  rig.network.run();
  // ARP reached h2 and h3; h3 answered; reply flooded or forwarded back.
  EXPECT_EQ(rig.h1->counters().rx_arp_reply, 1u);
  EXPECT_GE(rig.h2->counters().rx_total, 1u);
}

TEST(StaticFlows, InstallsOnConnectFilteredByDatapath) {
  Rig rig;
  Controller controller;
  auto& app = controller.add_app<StaticFlowApp>();

  FlowModMsg keep;
  keep.table_id = 0;
  keep.priority = 5;
  keep.match = Match().l4_dst(80);
  keep.instructions = apply({output(2)});
  app.flow(keep);

  FlowModMsg skip = keep;
  skip.priority = 6;
  app.flow(skip, /*datapath_id=*/0x9999);  // not our datapath

  GroupModMsg group_mod;
  group_mod.entry.group_id = 3;
  group_mod.entry.buckets.push_back(Bucket{{output(1)}, 1, 0});
  app.group(group_mod);

  controller.connect(*rig.channel);
  rig.network.run();

  EXPECT_EQ(rig.sw->pipeline().table(0).size(), 1u);
  EXPECT_NE(rig.sw->pipeline().groups().find(3), nullptr);
  EXPECT_EQ(app.installed_count(), 2u);
}

TEST(Controller, FlowStatsCallback) {
  Rig rig;
  Controller controller;
  auto& app = controller.add_app<StaticFlowApp>();
  FlowModMsg mod;
  mod.table_id = 0;
  mod.priority = 7;
  mod.match = Match().l4_dst(443);
  mod.instructions = apply({output(1)});
  app.flow(mod);
  Session& session = controller.connect(*rig.channel);
  rig.network.run();

  bool called = false;
  session.request_flow_stats([&](const FlowStatsReplyMsg& reply) {
    called = true;
    ASSERT_EQ(reply.flows.size(), 1u);
    EXPECT_EQ(reply.flows[0].priority, 7);
    EXPECT_NE(reply.flows[0].match_text.find("l4_dst=443"), std::string::npos);
  });
  rig.network.run();
  EXPECT_TRUE(called);
}

TEST(Controller, ErrorsDispatchToApps) {
  Rig rig;
  Controller controller;
  struct ErrorApp : App {
    int errors = 0;
    const char* name() const override { return "err"; }
    void on_error(Session&, const ErrorMsg&) override { ++errors; }
  };
  auto& app = controller.add_app<ErrorApp>();
  Session& session = controller.connect(*rig.channel);
  rig.network.run();

  FlowModMsg bad;
  bad.table_id = 99;
  session.send(bad);
  rig.network.run();
  EXPECT_EQ(app.errors, 1);
  EXPECT_EQ(controller.stats().errors, 1u);
}

TEST(Controller, EchoPingLiveness) {
  Rig rig;
  Controller controller;
  Session& session = controller.connect(*rig.channel);
  rig.network.run();
  session.ping(1);
  session.ping(2);
  rig.network.run();
  EXPECT_EQ(session.echo_replies(), 2u);
}

TEST(StatsMonitor, SamplesTrafficCounters) {
  Rig rig;
  Controller controller;
  auto& app = controller.add_app<StaticFlowApp>();
  FlowModMsg mod;
  mod.table_id = 0;
  mod.priority = 5;
  mod.match = Match().eth_dst(rig.h2->mac());
  mod.instructions = apply({output(2)});
  app.flow(mod);
  auto& monitor = controller.add_app<StatsMonitorApp>(rig.network.engine(),
                                                      /*interval=*/1'000'000, /*polls=*/3);
  Session& session = controller.connect(*rig.channel);
  // Traffic is paced across the polling window (50 packets over ~2.5 ms,
  // polls at ~1/2/3 ms) so successive samples see growing counters. It
  // starts 200 us in, after the handshake has installed the flow.
  rig.h1->send_udp_stream(rig.h2->mac(), rig.h2->ip(), 50, 128, 50'000, /*start=*/200'000);
  rig.network.run();

  const auto& samples = monitor.history(session.datapath_id());
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_LE(samples[0].packets, samples[1].packets);
  EXPECT_LE(samples[1].packets, samples[2].packets);
  EXPECT_EQ(samples[2].packets, 50u);
  EXPECT_EQ(samples[2].flows, 1u);
  EXPECT_GT(monitor.packet_rate(session.datapath_id()), 0.0);
  EXPECT_TRUE(monitor.history(0xdead).empty());
}

TEST(Controller, PortStatusDispatch) {
  Rig rig;
  Controller controller;
  struct PortApp : App {
    std::vector<std::pair<std::uint32_t, bool>> events;
    const char* name() const override { return "port"; }
    void on_port_status(Session&, const PortStatusMsg& event) override {
      events.emplace_back(event.desc.port_no, event.desc.up);
    }
  };
  auto& app = controller.add_app<PortApp>();
  controller.connect(*rig.channel);
  rig.network.run();

  rig.sw->set_port_state(3, false);
  rig.network.run();
  ASSERT_EQ(app.events.size(), 1u);
  EXPECT_EQ(app.events[0], std::make_pair(3u, false));
}

}  // namespace
}  // namespace harmless::controller

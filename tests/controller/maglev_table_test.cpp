// Maglev lookup-table properties (balance, minimal disruption) and
// the GroupTable select_table indirection it drives.
#include <gtest/gtest.h>

#include <map>

#include "controller/apps/maglev.hpp"
#include "openflow/group_table.hpp"

namespace harmless::controller {
namespace {

std::vector<MaglevBackend> backends(int count) {
  std::vector<MaglevBackend> out;
  for (int i = 0; i < count; ++i)
    out.push_back(MaglevBackend{"b" + std::to_string(i), net::MacAddr::from_u64(0xb0 + i),
                                net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(10 + i)),
                                static_cast<std::uint32_t>(i + 2)});
  return out;
}

TEST(MaglevTable, EveryBackendOwnsWithinOneSlotOfMOverN) {
  for (const int n : {2, 3, 5, 7}) {
    const std::size_t m = 251;  // prime
    const auto table = MaglevLbApp::build_lookup_table(backends(n), m);
    ASSERT_EQ(table.size(), m);
    std::map<std::uint16_t, std::size_t> owned;
    for (const std::uint16_t slot : table) owned[slot]++;
    ASSERT_EQ(owned.size(), static_cast<std::size_t>(n));
    for (const auto& [backend, slots] : owned) {
      EXPECT_GE(slots, m / static_cast<std::size_t>(n)) << "n=" << n;
      EXPECT_LE(slots, m / static_cast<std::size_t>(n) + 1) << "n=" << n;
    }
  }
}

TEST(MaglevTable, RemovingABackendOnlyRemapsItsOwnSlots) {
  const std::size_t m = 251;
  const auto all = backends(5);
  const auto full = MaglevLbApp::build_lookup_table(all, m);

  // Drop the last backend; indices of the survivors stay the same, so
  // slot values are directly comparable.
  const std::vector<MaglevBackend> remaining(all.begin(), all.end() - 1);
  const auto reduced = MaglevLbApp::build_lookup_table(remaining, m);
  std::size_t moved = 0, freed = 0;
  for (std::size_t slot = 0; slot < m; ++slot) {
    if (full[slot] == 4) {
      ++freed;  // owned by the removed backend: must remap somewhere
      EXPECT_LT(reduced[slot], 4);
    } else if (reduced[slot] != full[slot]) {
      ++moved;  // disruption: a surviving backend's slot changed hands
    }
  }
  EXPECT_GT(freed, 0u);
  // Maglev's guarantee is *minimal* disruption, not zero: a removal
  // perturbs the round-robin interleaving slightly. Well under 20% of
  // surviving slots may move; naive `hash % n` would move ~75%.
  EXPECT_LT(moved, m / 5) << "moved=" << moved;
}

TEST(MaglevTable, DeterministicAcrossCalls) {
  const auto a = MaglevLbApp::build_lookup_table(backends(3), 251);
  const auto b = MaglevLbApp::build_lookup_table(backends(3), 251);
  EXPECT_EQ(a, b);
}

TEST(GroupSelectTable, LookupTableDrivesBucketChoiceAndValidates) {
  openflow::GroupTable groups;
  openflow::GroupEntry entry;
  entry.group_id = 1;
  entry.type = openflow::GroupType::kSelect;
  entry.buckets.resize(2);
  entry.buckets[0].actions = {openflow::output(1)};
  entry.buckets[1].actions = {openflow::output(2)};
  entry.select_table = {0, 1, 5};  // 5 out of range
  EXPECT_FALSE(groups.add(entry).is_ok());

  entry.select_table = {1, 1, 1};  // every flow -> bucket 1
  ASSERT_TRUE(groups.add(entry).is_ok());
  const auto* stored = groups.find(1);
  ASSERT_NE(stored, nullptr);
  for (std::uint64_t hash = 1; hash < 64; ++hash)
    EXPECT_EQ(groups.select_bucket(*stored, hash), 1u);
}

}  // namespace
}  // namespace harmless::controller

// Group table semantics (ALL/SELECT/INDIRECT) and multi-table pipeline
// execution: goto, action sets, header rewrites with checksum fix-up,
// packet-ins, VLAN push/pop.
#include <gtest/gtest.h>

#include <map>

#include "net/build.hpp"
#include "net/parse.hpp"
#include "openflow/pipeline.hpp"

namespace harmless::openflow {
namespace {

using namespace net;

FlowKey flow(std::uint32_t src_ip_suffix = 1) {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x02aa);
  key.eth_dst = MacAddr::from_u64(0x02bb);
  key.ip_src = Ipv4Addr(0x0a000000u + src_ip_suffix);
  key.ip_dst = Ipv4Addr(10, 0, 1, 1);
  key.src_port = 1234;
  key.dst_port = 80;
  return key;
}

// --------------------------------------------------------------- groups

TEST(GroupTable, AddValidation) {
  GroupTable groups;
  GroupEntry entry;
  entry.group_id = 1;
  EXPECT_FALSE(groups.add(entry).is_ok());  // no buckets

  entry.buckets.push_back(Bucket{{output(1)}, 1, 0});
  EXPECT_TRUE(groups.add(entry).is_ok());
  EXPECT_FALSE(groups.add(entry).is_ok());  // duplicate id

  GroupEntry select;
  select.group_id = 2;
  select.type = GroupType::kSelect;
  select.buckets.push_back(Bucket{{output(1)}, 0, 0});
  EXPECT_FALSE(groups.add(select).is_ok());  // zero total weight

  GroupEntry indirect;
  indirect.group_id = 3;
  indirect.type = GroupType::kIndirect;
  indirect.buckets.push_back(Bucket{{output(1)}, 1, 0});
  indirect.buckets.push_back(Bucket{{output(2)}, 1, 0});
  EXPECT_FALSE(groups.add(indirect).is_ok());  // indirect needs 1 bucket
}

TEST(GroupTable, ModifyAndRemove) {
  GroupTable groups;
  GroupEntry entry;
  entry.group_id = 1;
  entry.buckets.push_back(Bucket{{output(1)}, 1, 0});
  ASSERT_TRUE(groups.add(entry).is_ok());

  entry.buckets[0].actions = {output(9)};
  ASSERT_TRUE(groups.modify(entry).is_ok());
  EXPECT_EQ(std::get<OutputAction>(groups.find(1)->buckets[0].actions[0]).port, 9u);

  GroupEntry missing;
  missing.group_id = 42;
  missing.buckets.push_back(Bucket{{output(1)}, 1, 0});
  EXPECT_FALSE(groups.modify(missing).is_ok());

  groups.remove(1);
  EXPECT_EQ(groups.find(1), nullptr);
  groups.remove(1);  // idempotent
}

TEST(GroupTable, SelectIsDeterministicPerFlow) {
  GroupTable groups;
  GroupEntry entry;
  entry.group_id = 1;
  entry.type = GroupType::kSelect;
  for (int i = 0; i < 4; ++i) entry.buckets.push_back(Bucket{{output(1)}, 1, 0});
  ASSERT_TRUE(groups.add(entry).is_ok());

  const FieldView view =
      build_field_view(parse_packet(make_udp(flow(7), 64)), 1);
  const std::size_t first = groups.select_bucket(*groups.find(1), flow_hash_of(view));
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(groups.select_bucket(*groups.find(1), flow_hash_of(view)), first);
}

TEST(GroupTable, SelectSpreadsAcrossSourceIps) {
  GroupTable groups;
  GroupEntry entry;
  entry.group_id = 1;
  entry.type = GroupType::kSelect;
  for (int i = 0; i < 4; ++i) entry.buckets.push_back(Bucket{{output(1)}, 1, 0});
  ASSERT_TRUE(groups.add(entry).is_ok());

  std::map<std::size_t, int> histogram;
  for (std::uint32_t ip = 1; ip <= 400; ++ip) {
    const FieldView view = build_field_view(parse_packet(make_udp(flow(ip), 64)), 1);
    histogram[groups.select_bucket(*groups.find(1), flow_hash_of(view))]++;
  }
  ASSERT_EQ(histogram.size(), 4u);  // every bucket used
  for (const auto& [bucket, count] : histogram) {
    (void)bucket;
    EXPECT_GT(count, 50);  // roughly even (100 each +-50%)
    EXPECT_LT(count, 150);
  }
}

TEST(GroupTable, WeightsBiasSelection) {
  GroupTable groups;
  GroupEntry entry;
  entry.group_id = 1;
  entry.type = GroupType::kSelect;
  entry.buckets.push_back(Bucket{{output(1)}, 3, 0});  // 75%
  entry.buckets.push_back(Bucket{{output(2)}, 1, 0});  // 25%
  ASSERT_TRUE(groups.add(entry).is_ok());

  int heavy = 0;
  for (std::uint32_t ip = 1; ip <= 1000; ++ip) {
    const FieldView view = build_field_view(parse_packet(make_udp(flow(ip), 64)), 1);
    if (groups.select_bucket(*groups.find(1), flow_hash_of(view)) == 0) ++heavy;
  }
  EXPECT_GT(heavy, 650);
  EXPECT_LT(heavy, 850);
}

// ------------------------------------------------------------- pipeline

TEST(Pipeline, MissWithEmptyTableDrops) {
  Pipeline pipeline(1);
  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 1, 0);
  EXPECT_TRUE(result.dropped());
  EXPECT_FALSE(result.matched);
  EXPECT_GT(result.cost_ns, 0);
}

void install(Pipeline& pipeline, std::uint8_t table, std::uint16_t priority, Match match,
             Instructions instructions) {
  FlowEntry entry;
  entry.priority = priority;
  entry.match = std::move(match);
  entry.instructions = std::move(instructions);
  ASSERT_TRUE(pipeline.table(table).add(std::move(entry), 0).is_ok());
}

TEST(Pipeline, SimpleOutput) {
  Pipeline pipeline(1);
  install(pipeline, 0, 10, Match().l4_dst(80), apply({output(3)}));
  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 1, 0);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].first, 3u);
  EXPECT_TRUE(result.matched);
}

TEST(Pipeline, GotoTableChainsAndActionSetExecutesAtExit) {
  Pipeline pipeline(2);
  // Table 0: write an output into the action set, then goto table 1.
  Instructions stage0;
  stage0.write_actions = {output(7)};
  stage0.goto_table = 1;
  install(pipeline, 0, 10, Match(), std::move(stage0));
  // Table 1: nothing matches -> but action set still runs? No: a miss
  // in table 1 drops (OF default). Add a match that just ends.
  install(pipeline, 1, 10, Match(), Instructions{});

  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 1, 0);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].first, 7u);
  EXPECT_EQ(result.last_table, 1);
}

TEST(Pipeline, ClearActionsEmptiesTheSet) {
  Pipeline pipeline(2);
  Instructions stage0;
  stage0.write_actions = {output(7)};
  stage0.goto_table = 1;
  install(pipeline, 0, 10, Match(), std::move(stage0));
  Instructions stage1;
  stage1.clear_actions = true;
  install(pipeline, 1, 10, Match(), std::move(stage1));

  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 1, 0);
  EXPECT_TRUE(result.dropped());
}

TEST(Pipeline, WriteActionsLastOutputWins) {
  Pipeline pipeline(2);
  Instructions stage0;
  stage0.write_actions = {output(7)};
  stage0.goto_table = 1;
  install(pipeline, 0, 10, Match(), std::move(stage0));
  Instructions stage1;
  stage1.write_actions = {output(9)};
  install(pipeline, 1, 10, Match(), std::move(stage1));

  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 1, 0);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].first, 9u);
}

TEST(Pipeline, BackwardGotoStopsPipeline) {
  Pipeline pipeline(2);
  Instructions bad;
  bad.apply_actions = {output(2)};
  bad.goto_table = 0;  // backward: forbidden
  install(pipeline, 1, 10, Match(), std::move(bad));
  Instructions start;
  start.goto_table = 1;
  install(pipeline, 0, 10, Match(), std::move(start));

  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 1, 0);
  EXPECT_EQ(result.outputs.size(), 1u);  // output happened, no loop
}

TEST(Pipeline, VlanPushSetOutputRewritesHeader) {
  Pipeline pipeline(1);
  install(pipeline, 0, 10, Match(),
          apply({push_vlan(), set_vlan_vid(101), output(1)}));
  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 2, 0);
  ASSERT_EQ(result.outputs.size(), 1u);
  const ParsedPacket parsed = parse_packet(result.outputs[0].second);
  ASSERT_TRUE(parsed.has_vlan());
  EXPECT_EQ(parsed.vlan_vid(), 101);
  ASSERT_TRUE(parsed.ipv4);  // inner packet intact
}

TEST(Pipeline, VlanPopRestoresUntagged) {
  Pipeline pipeline(1);
  install(pipeline, 0, 10, Match().vlan_vid(101), apply({pop_vlan(), output(1)}));
  Packet tagged = make_udp(flow(), 64);
  vlan_push(tagged.frame(), VlanTag{101, 0, false});
  const PipelineResult result = pipeline.run(std::move(tagged), 1, 0);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_FALSE(parse_packet(result.outputs[0].second).has_vlan());
}

TEST(Pipeline, RewritesAfterApplyAffectNextTableMatch) {
  Pipeline pipeline(2);
  // Table 0 pushes vlan 200, goto 1; table 1 matches vlan 200.
  install(pipeline, 0, 10, Match(),
          apply_then_goto({push_vlan(), set_vlan_vid(200)}, 1));
  install(pipeline, 1, 10, Match().vlan_vid(200), apply({output(5)}));
  install(pipeline, 1, 5, Match(), Instructions{});  // explicit drop fallback

  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 1, 0);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].first, 5u);
}

TEST(Pipeline, SetIpDstKeepsChecksumsValid) {
  Pipeline pipeline(1);
  install(pipeline, 0, 10, Match(),
          apply({set_ip_dst(Ipv4Addr(192, 168, 9, 9)), set_l4_dst(8080), output(1)}));
  const PipelineResult result = pipeline.run(make_udp(flow(), 128), 1, 0);
  ASSERT_EQ(result.outputs.size(), 1u);
  // The parser validates the IP checksum; UDP parse validates length.
  const ParsedPacket parsed = parse_packet(result.outputs[0].second);
  ASSERT_TRUE(parsed.ipv4);
  EXPECT_EQ(parsed.ipv4->dst, Ipv4Addr(192, 168, 9, 9));
  ASSERT_TRUE(parsed.udp);
  EXPECT_EQ(parsed.dst_port(), 8080);
}

TEST(Pipeline, OutputToControllerBecomesPacketIn) {
  Pipeline pipeline(1);
  install(pipeline, 0, 10, Match(), apply({to_controller()}));
  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 4, 0);
  EXPECT_TRUE(result.outputs.empty());
  ASSERT_EQ(result.packet_ins.size(), 1u);
  EXPECT_EQ(result.packet_ins[0].in_port, 4u);
  EXPECT_FALSE(result.dropped());
}

TEST(Pipeline, GroupAllReplicates) {
  Pipeline pipeline(1);
  GroupEntry group_entry;
  group_entry.group_id = 1;
  group_entry.type = GroupType::kAll;
  group_entry.buckets.push_back(Bucket{{output(1)}, 1, 0});
  group_entry.buckets.push_back(Bucket{{push_vlan(), set_vlan_vid(7), output(2)}, 1, 0});
  ASSERT_TRUE(pipeline.groups().add(group_entry).is_ok());
  install(pipeline, 0, 10, Match(), apply({group(1)}));

  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 3, 0);
  ASSERT_EQ(result.outputs.size(), 2u);
  // Bucket mutations are isolated: copy 1 untagged, copy 2 tagged.
  EXPECT_FALSE(parse_packet(result.outputs[0].second).has_vlan());
  EXPECT_EQ(parse_packet(result.outputs[1].second).vlan_vid(), 7);
}

TEST(Pipeline, SelectGroupPicksExactlyOneBucket) {
  Pipeline pipeline(1);
  GroupEntry group_entry;
  group_entry.group_id = 1;
  group_entry.type = GroupType::kSelect;
  group_entry.buckets.push_back(Bucket{{output(1)}, 1, 0});
  group_entry.buckets.push_back(Bucket{{output(2)}, 1, 0});
  ASSERT_TRUE(pipeline.groups().add(group_entry).is_ok());
  install(pipeline, 0, 10, Match(), apply({group(1)}));

  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 3, 0);
  ASSERT_EQ(result.outputs.size(), 1u);
  // Bucket counters tick.
  const GroupEntry* live = pipeline.groups().find(1);
  EXPECT_EQ(live->buckets[0].packet_count + live->buckets[1].packet_count, 1u);
}

TEST(Pipeline, DanglingGroupBlackholes) {
  Pipeline pipeline(1);
  install(pipeline, 0, 10, Match(), apply({group(404)}));
  const PipelineResult result = pipeline.run(make_udp(flow(), 64), 1, 0);
  EXPECT_TRUE(result.dropped());
}

TEST(Pipeline, CostScalesWithWork) {
  Pipeline cheap(1);
  install(cheap, 0, 10, Match(), apply({output(1)}));
  Pipeline expensive(2);
  install(expensive, 0, 10, Match(),
          apply_then_goto({push_vlan(), set_vlan_vid(5)}, 1));
  install(expensive, 1, 10, Match(), apply({pop_vlan(), output(1)}));

  const auto cheap_cost = cheap.run(make_udp(flow(), 64), 1, 0).cost_ns;
  const auto expensive_cost = expensive.run(make_udp(flow(), 64), 1, 0).cost_ns;
  EXPECT_GT(expensive_cost, cheap_cost);
}

TEST(Pipeline, InvalidTableThrows) {
  Pipeline pipeline(2);
  EXPECT_THROW((void)pipeline.table(2), util::ConfigError);
  EXPECT_THROW(Pipeline(0), util::ConfigError);
}

TEST(Pipeline, TotalEntriesSumsTables) {
  Pipeline pipeline(3);
  install(pipeline, 0, 1, Match().l4_dst(1), Instructions{});
  install(pipeline, 2, 1, Match().l4_dst(2), Instructions{});
  EXPECT_EQ(pipeline.total_entries(), 2u);
}

}  // namespace
}  // namespace harmless::openflow

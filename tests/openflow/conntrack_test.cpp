// ConnTracker unit tests: the state machine, timeouts and expiry, LRU
// capacity bounds, and NAT allocation (including the shard-affinity
// property the symmetric-RSS datapath depends on).
#include <gtest/gtest.h>

#include "net/l4.hpp"
#include "openflow/conntrack.hpp"
#include "util/rng.hpp"

namespace harmless::openflow {
namespace {

constexpr std::uint8_t kTcp = 6;
constexpr std::uint8_t kUdp = 17;

CtTuple tuple(std::uint32_t src_ip, std::uint16_t src_port, std::uint32_t dst_ip,
              std::uint16_t dst_port, std::uint8_t proto = kTcp) {
  return CtTuple{src_ip, dst_ip, src_port, dst_port, proto};
}

const CtAction kCommit{};

TEST(ConnTracker, TcpLifecycleNewToEstablishedToClosing) {
  ConnTracker ct(CtConfig{}, 1);
  const CtTuple orig = tuple(0x0a000001, 40000, 0x0a000002, 80);

  // Before any commit: a SYN is NEW, a mid-stream segment is INVALID.
  EXPECT_EQ(ct.classify(orig, net::kTcpSyn, 0), kCtNew);
  EXPECT_EQ(ct.classify(orig, net::kTcpAck, 0), kCtInvalid);

  // SYN through ct: commits.
  const CtOutcome opened = ct.process(orig, net::kTcpSyn, 1000, kCommit);
  EXPECT_TRUE(opened.committed);
  EXPECT_EQ(opened.state & kCtNew, kCtNew);
  EXPECT_EQ(ct.size(), 1u);

  // Original direction, pre-reply: tracked but not yet established.
  EXPECT_EQ(ct.classify(orig, net::kTcpAck, 2000), kCtTracked);

  // Reply direction classifies ESTABLISHED immediately (it proves
  // bidirectionality), and its ct traversal flips seen_reply.
  const CtTuple reply = orig.reversed();
  EXPECT_EQ(ct.classify(reply, net::kTcpSyn | net::kTcpAck, 2000),
            kCtTracked | kCtReply | kCtEstablished);
  ct.process(reply, net::kTcpSyn | net::kTcpAck, 2000, kCommit);

  // Now the original direction is established too.
  EXPECT_EQ(ct.classify(orig, net::kTcpAck, 3000), kCtTracked | kCtEstablished);

  // FIN demotes the entry to the transient timeout.
  ct.process(orig, net::kTcpFin | net::kTcpAck, 4000, kCommit);
  const auto entries = ct.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].closing);
  EXPECT_TRUE(entries[0].seen_reply);
  EXPECT_EQ(entries[0].expires_at, 4000 + CtConfig{}.tcp_transient_timeout);
}

TEST(ConnTracker, UdpTracksWithoutFlagsAndIdlesOut) {
  CtConfig config;
  config.udp_timeout = 1'000;
  config.sweep_interval = 100;  // wheel buckets quantize up to this
  ConnTracker ct(config, 1);
  const CtTuple orig = tuple(0x0a000001, 5353, 0x0a000002, 53, kUdp);

  EXPECT_EQ(ct.classify(orig, 0, 0), kCtNew);  // no SYN requirement for UDP
  ct.process(orig, 0, 100, kCommit);
  EXPECT_EQ(ct.classify(orig, 0, 500), kCtTracked);

  // Idle past udp_timeout: the sweep reaps it.
  EXPECT_EQ(ct.expire(2'000), 1u);
  EXPECT_EQ(ct.size(), 0u);
  EXPECT_EQ(ct.stats().expired, 1u);
  EXPECT_EQ(ct.classify(orig, 0, 2'001), kCtNew);
}

TEST(ConnTracker, RefreshExtendsDeadlineAcrossStaleWheelBuckets) {
  CtConfig config;
  config.udp_timeout = 1'000;
  config.sweep_interval = 100;
  ConnTracker ct(config, 1);
  const CtTuple orig = tuple(1, 1, 2, 2, kUdp);
  ct.process(orig, 0, 0, kCommit);
  // Refresh just before the original deadline; the stale wheel bucket
  // must re-file, not kill.
  ct.process(orig, 0, 900, kCommit);
  EXPECT_EQ(ct.expire(1'000), 0u);
  EXPECT_EQ(ct.size(), 1u);
  EXPECT_EQ(ct.expire(2'000), 1u);
}

TEST(ConnTracker, LruEvictsOldestAtCapacity) {
  CtConfig config;
  config.max_connections = 4;
  ConnTracker ct(config, 1);
  for (std::uint16_t i = 0; i < 4; ++i)
    ct.process(tuple(100 + i, i, 200, 80, kUdp), 0, i, kCommit);
  // Touch connection 0 so connection 1 is the LRU victim.
  ct.process(tuple(100, 0, 200, 80, kUdp), 0, 10, kCommit);

  ct.process(tuple(500, 9, 200, 80, kUdp), 0, 20, kCommit);
  EXPECT_EQ(ct.size(), 4u);
  EXPECT_EQ(ct.stats().evicted, 1u);
  EXPECT_EQ(ct.classify(tuple(101, 1, 200, 80, kUdp), 0, 21), kCtNew);    // evicted
  EXPECT_EQ(ct.classify(tuple(100, 0, 200, 80, kUdp), 0, 21), kCtTracked);  // survived
}

TEST(ConnTracker, SnatAllocatesDistinctPortsAndTranslatesBothWays) {
  ConnTracker ct(CtConfig{}, 1);
  const CtAction snat{CtAction::Nat::kSource, 0xc0a80001, 49152, 65535};

  // Two inside hosts using the same source port must get distinct
  // external ports.
  const CtOutcome a = ct.process(tuple(0x0a000001, 40000, 0x08080808, 80), net::kTcpSyn, 0, snat);
  const CtOutcome b = ct.process(tuple(0x0a000002, 40000, 0x08080808, 80), net::kTcpSyn, 0, snat);
  ASSERT_TRUE(a.rewrite);
  ASSERT_TRUE(b.rewrite);
  EXPECT_TRUE(a.translation.src);
  EXPECT_EQ(a.translation.src_ip, 0xc0a80001u);
  EXPECT_NE(a.translation.src_port, b.translation.src_port);
  EXPECT_EQ(ct.stats().nat_allocated, 2u);

  // The reply to the translated tuple maps back to the inside host.
  const CtTuple reply = tuple(0x08080808, 80, 0xc0a80001, a.translation.src_port);
  const CtOutcome back = ct.process(reply, net::kTcpAck, 100, kCommit);
  ASSERT_TRUE(back.rewrite);
  EXPECT_TRUE(back.translation.dst);
  EXPECT_EQ(back.translation.dst_ip, 0x0a000001u);
  EXPECT_EQ(back.translation.dst_port, 40000u);
  EXPECT_EQ(back.state & kCtEstablished, kCtEstablished);
}

TEST(ConnTracker, SnatRepliesHashToTheCommittingShard) {
  // The allocator property the sharded datapath depends on: the
  // translated reply tuple must steer (symmetric hash % shards) to the
  // same virtual shard as the original direction, for every shard
  // count the benches use.
  util::Rng rng(7);
  for (const std::size_t shards : {1UL, 2UL, 4UL, 8UL}) {
    CtConfig config;
    config.nat_steer_shards = shards;
    ConnTracker ct(config, 1);
    const CtAction snat{CtAction::Nat::kSource, 0xc0a80001, 49152, 65535};
    for (int i = 0; i < 200; ++i) {
      const CtTuple orig = tuple(0x0a000000 + static_cast<std::uint32_t>(rng.below(1 << 16)),
                                 static_cast<std::uint16_t>(1024 + rng.below(60000)),
                                 0x08080808, 443);
      const CtOutcome out = ct.process(orig, net::kTcpSyn, i, snat);
      ASSERT_TRUE(out.rewrite);
      const CtTuple reply =
          tuple(orig.dst_ip, orig.dst_port, out.translation.src_ip, out.translation.src_port);
      EXPECT_EQ(reply.symmetric_hash() % shards, orig.symmetric_hash() % shards)
          << "shards=" << shards << " i=" << i;
    }
    EXPECT_EQ(ct.stats().nat_failures, 0u);
  }
}

TEST(ConnTracker, DnatStoresMappingAndUntranslatesReplies) {
  ConnTracker ct(CtConfig{}, 1);
  const CtAction dnat{CtAction::Nat::kDest, 0x0a000063, 0, 0};  // keep dst port

  const CtTuple orig = tuple(0xac100001, 30000, 0x0a000064, 80);  // client -> VIP
  const CtOutcome fwd = ct.process(orig, net::kTcpSyn, 0, dnat);
  ASSERT_TRUE(fwd.rewrite);
  EXPECT_TRUE(fwd.translation.dst);
  EXPECT_EQ(fwd.translation.dst_ip, 0x0a000063u);
  EXPECT_EQ(fwd.translation.dst_port, 80u);  // port preserved

  // Backend's reply: restore the VIP as source.
  const CtTuple reply = tuple(0x0a000063, 80, 0xac100001, 30000);
  const CtOutcome back = ct.process(reply, net::kTcpAck, 100, kCommit);
  ASSERT_TRUE(back.rewrite);
  EXPECT_TRUE(back.translation.src);
  EXPECT_EQ(back.translation.src_ip, 0x0a000064u);
  EXPECT_EQ(back.translation.src_port, 80u);

  // Later original-direction packets re-derive the same mapping even
  // through a plain (non-NAT) ct action — the stored mapping wins.
  const CtOutcome again = ct.process(orig, net::kTcpAck, 200, kCommit);
  ASSERT_TRUE(again.rewrite);
  EXPECT_EQ(again.translation.dst_ip, 0x0a000063u);
  EXPECT_EQ(ct.stats().nat_allocated, 1u);
}

// ---- stateful HA: checkpoint/restore and replication (PR 9) ----

TEST(ConnTracker, CheckpointSerializeParseRoundTrips) {
  ConnTracker ct(CtConfig{}, 1);
  const CtAction snat{CtAction::Nat::kSource, 0xc0a80001, 49152, 65535};
  ct.process(tuple(0x0a000001, 40000, 0x08080808, 80), net::kTcpSyn, 100, snat);
  ct.process(tuple(0x0a000002, 5353, 0x0a000003, 53, kUdp), 0, 200, kCommit);

  const CtSnapshot snap = ct.checkpoint(1'000);
  EXPECT_EQ(snap.taken_at, 1'000);
  ASSERT_EQ(snap.entries.size(), 2u);
  EXPECT_EQ(ct.stats().checkpoints, 1u);

  const std::vector<std::uint8_t> bytes = snap.serialize();
  const auto parsed = CtSnapshot::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->taken_at, snap.taken_at);
  ASSERT_EQ(parsed->entries.size(), snap.entries.size());
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    EXPECT_EQ(parsed->entries[i].orig, snap.entries[i].orig);
    EXPECT_EQ(parsed->entries[i].reply, snap.entries[i].reply);
    EXPECT_EQ(parsed->entries[i].nat.kind, snap.entries[i].nat.kind);
    EXPECT_EQ(parsed->entries[i].nat.ip, snap.entries[i].nat.ip);
    EXPECT_EQ(parsed->entries[i].nat.port, snap.entries[i].nat.port);
    EXPECT_EQ(parsed->entries[i].seen_reply, snap.entries[i].seen_reply);
    EXPECT_EQ(parsed->entries[i].remaining_ns, snap.entries[i].remaining_ns);
  }

  // Truncation, bit rot in the magic, and trailing garbage all parse
  // to nullopt, never to garbage connections.
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 5);
  EXPECT_FALSE(CtSnapshot::parse(truncated).has_value());
  std::vector<std::uint8_t> corrupted = bytes;
  corrupted[0] ^= 0xff;
  EXPECT_FALSE(CtSnapshot::parse(corrupted).has_value());
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(CtSnapshot::parse(padded).has_value());
}

TEST(ConnTracker, RestoreDropsMidHandshakeEntriesAndCollisions) {
  ConnTracker ct(CtConfig{}, 1);
  // One fully established connection and one SYN-only half-open.
  const CtTuple established = tuple(0x0a000001, 40000, 0x0a000002, 80);
  ct.process(established, net::kTcpSyn, 0, kCommit);
  ct.process(established.reversed(), net::kTcpSyn | net::kTcpAck, 100, kCommit);
  const CtTuple half_open = tuple(0x0a000003, 41000, 0x0a000002, 80);
  ct.process(half_open, net::kTcpSyn, 200, kCommit);

  const CtSnapshot snap = ct.checkpoint(1'000);
  ASSERT_EQ(snap.entries.size(), 2u);

  // A snapshot taken mid-handshake must not resurrect the half-open
  // entry: its peer will retransmit the SYN and re-commit cleanly.
  ConnTracker fresh(CtConfig{}, 1);
  const CtRestoreResult result = fresh.restore(snap, 5'000);
  EXPECT_EQ(result.restored, 1u);
  EXPECT_EQ(result.dropped, 1u);
  EXPECT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh.stats().restored, 1u);
  EXPECT_EQ(fresh.stats().restore_dropped, 1u);
  // The survivor still classifies ESTABLISHED — mid-stream ACKs keep
  // flowing instead of going INVALID.
  EXPECT_EQ(fresh.classify(established, net::kTcpAck, 5'100), kCtTracked | kCtEstablished);
  EXPECT_EQ(fresh.classify(half_open, net::kTcpAck, 5'100), kCtInvalid);

  // Restoring the same snapshot again collides with live state: live
  // entries win, nothing is duplicated or corrupted.
  const CtRestoreResult again = fresh.restore(snap, 6'000);
  EXPECT_EQ(again.restored, 0u);
  EXPECT_EQ(again.dropped, 2u);
  EXPECT_EQ(fresh.size(), 1u);
}

TEST(ConnTracker, RestoreReArmsRemainingTimeoutAndDemotesEstablished) {
  CtConfig config;
  config.udp_timeout = 1'000;
  config.sweep_interval = 100;
  ConnTracker ct(config, 1);
  const CtTuple udp = tuple(1, 1, 2, 2, kUdp);
  ct.process(udp, 0, 600, kCommit);  // expires at 1'600
  const CtTuple tcp = tuple(3, 3, 4, 4);
  ct.process(tcp, net::kTcpSyn, 0, kCommit);
  ct.process(tcp.reversed(), net::kTcpSyn | net::kTcpAck, 100, kCommit);

  const CtSnapshot snap = ct.checkpoint(1'200);  // UDP remaining = 400

  // The remaining timeout survives the restart: the UDP entry gets
  // 400 ns from the restore clock, not a fresh full udp_timeout.
  ConnTracker fresh(config, 1);
  fresh.restore(snap, 10'000);
  EXPECT_EQ(fresh.classify(udp, 0, 10'300), kCtTracked);
  EXPECT_EQ(fresh.expire(10'400), 1u);  // 10'000 + 400, wheel re-armed
  EXPECT_EQ(fresh.classify(udp, 0, 10'500), kCtNew);

  // The established TCP entry came back *demoted*: ~30 s remained in
  // the snapshot, but unconfirmed entries idle out on the transient
  // timeout — a stale snapshot cannot keep a dead flow alive.
  auto entries = fresh.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(entries[0].confirmed);
  EXPECT_EQ(entries[0].expires_at, 10'000 + config.tcp_transient_timeout);

  // Real traffic re-confirms it back up to the established budget.
  fresh.process(tcp, net::kTcpAck, 11'000, kCommit);
  entries = fresh.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].confirmed);
  EXPECT_EQ(entries[0].expires_at, 11'000 + config.tcp_established_timeout);
}

TEST(ConnTracker, RestoredNatBindingBlocksPostRestoreSnatCollision) {
  // Two-port SNAT pool: the restored binding must keep its external
  // port claimed, so a post-restore allocation cannot collide with it.
  ConnTracker ct(CtConfig{}, 1);
  const CtAction snat{CtAction::Nat::kSource, 0xc0a80001, 49152, 49153};
  const CtTuple first = tuple(0x0a000001, 40000, 0x08080808, 80);
  const CtOutcome a = ct.process(first, net::kTcpSyn, 0, snat);
  ASSERT_TRUE(a.rewrite);
  ct.process(CtTuple{0x08080808, 0xc0a80001, 80, a.translation.src_port, kTcp},
             net::kTcpSyn | net::kTcpAck, 100, kCommit);  // establish

  ConnTracker fresh(CtConfig{}, 1);
  fresh.restore(ct.checkpoint(1'000), 2'000);
  ASSERT_EQ(fresh.size(), 1u);

  // A new inside host asks for SNAT after the restore: it must get the
  // *other* pool port — the restored reply binding owns the first.
  const CtOutcome b =
      fresh.process(tuple(0x0a000002, 40000, 0x08080808, 80), net::kTcpSyn, 2'100, snat);
  ASSERT_TRUE(b.rewrite);
  EXPECT_NE(b.translation.src_port, a.translation.src_port);
  EXPECT_EQ(fresh.stats().nat_failures, 0u);

  // Pool exhausted: a third allocation fails instead of stealing the
  // restored binding's port.
  const CtOutcome c =
      fresh.process(tuple(0x0a000003, 40000, 0x08080808, 80), net::kTcpSyn, 2'200, snat);
  EXPECT_FALSE(c.rewrite);
  EXPECT_EQ(fresh.stats().nat_failures, 1u);

  // And the restored mapping still translates replies to the inside.
  const CtOutcome back = fresh.process(
      CtTuple{0x08080808, 0xc0a80001, 80, a.translation.src_port, kTcp}, net::kTcpAck, 2'300,
      kCommit);
  ASSERT_TRUE(back.rewrite);
  EXPECT_EQ(back.translation.dst_ip, 0x0a000001u);
  EXPECT_EQ(back.translation.dst_port, 40000u);
}

TEST(ConnTracker, DeltaStreamReplicatesStateAdvancesOnly) {
  ConnTracker active(CtConfig{}, 1);
  ConnTracker standby(CtConfig{}, 1);
  std::vector<CtDelta> log;
  active.set_delta_sink([&](const CtDelta& delta) { log.push_back(delta); });

  const CtTuple conn = tuple(0x0a000001, 40000, 0x0a000002, 80);
  active.process(conn, net::kTcpSyn, 0, kCommit);           // kCommit
  active.process(conn.reversed(), net::kTcpAck, 100, kCommit);  // kUpdate (seen_reply)
  active.process(conn, net::kTcpAck, 200, kCommit);         // refresh only: no delta
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].kind, CtDelta::Kind::kCommit);
  EXPECT_EQ(log[1].kind, CtDelta::Kind::kUpdate);
  EXPECT_TRUE(log[1].entry.seen_reply);
  EXPECT_EQ(active.stats().deltas_emitted, 2u);

  for (const CtDelta& delta : log) standby.apply_delta(delta, 500);
  EXPECT_EQ(standby.size(), 1u);
  EXPECT_EQ(standby.classify(conn, net::kTcpAck, 600), kCtTracked | kCtEstablished);

  // FIN advances state (kUpdate), expiry/kill closes it (kClose) —
  // and applying the close removes the replica too.
  active.process(conn, net::kTcpFin | net::kTcpAck, 300, kCommit);
  active.expire(300 + CtConfig{}.tcp_transient_timeout + CtConfig{}.sweep_interval);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[2].kind, CtDelta::Kind::kUpdate);
  EXPECT_TRUE(log[2].entry.closing);
  EXPECT_EQ(log[3].kind, CtDelta::Kind::kClose);
  standby.apply_delta(log[2], 700);
  standby.apply_delta(log[3], 800);
  EXPECT_EQ(standby.size(), 0u);
  EXPECT_EQ(standby.stats().deltas_applied, 4u);
}

TEST(ConnTracker, DemoteAllClampsReplicatedEntriesToTransient) {
  CtConfig config;
  config.sweep_interval = 100;
  ConnTracker standby(config, 1);
  CtDelta delta;
  delta.kind = CtDelta::Kind::kCommit;
  delta.entry = CtSnapshotEntry{tuple(1, 1, 2, 2), tuple(2, 2, 1, 1), CtNat{}, true, false,
                                config.tcp_established_timeout};
  standby.apply_delta(delta, 0);
  auto entries = standby.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].confirmed);  // the live stream vouches for it
  EXPECT_EQ(entries[0].expires_at, config.tcp_established_timeout);

  // Takeover: every replicated entry is only as fresh as the stream
  // was — demote to the transient budget until traffic re-confirms.
  EXPECT_EQ(standby.demote_all(1'000), 1u);
  entries = standby.snapshot();
  EXPECT_FALSE(entries[0].confirmed);
  EXPECT_EQ(entries[0].expires_at, 1'000 + config.tcp_transient_timeout);
  EXPECT_EQ(standby.classify(tuple(1, 1, 2, 2), net::kTcpAck, 2'000),
            kCtTracked | kCtEstablished);
}

TEST(ConnTracker, NextDeadlineDrivesSweepScheduling) {
  CtConfig config;
  config.udp_timeout = 1'000;
  config.sweep_interval = 500;
  ConnTracker ct(config, 1);
  EXPECT_FALSE(ct.next_deadline().has_value());
  ct.process(tuple(1, 1, 2, 2, kUdp), 0, 500, kCommit);
  // expires_at = 1'500, quantized up to the 500ns wheel bucket.
  const auto deadline = ct.next_deadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_EQ(*deadline, 1'500);
  ct.clear();
  EXPECT_FALSE(ct.next_deadline().has_value());
  EXPECT_EQ(ct.size(), 0u);
}

TEST(ConnTracker, FencedRefusesNewCommitsButServesEstablished) {
  ConnTracker ct(CtConfig{}, 1);
  const CtTuple orig = tuple(0x0a000001, 40000, 0x0a000002, 80);
  ct.process(orig, net::kTcpSyn, 1000, kCommit);
  ct.process(orig.reversed(), net::kTcpSyn | net::kTcpAck, 2000, kCommit);
  ASSERT_EQ(ct.size(), 1u);

  ct.set_fenced(true);
  EXPECT_TRUE(ct.fenced());

  // New connections (and their NAT allocations) are refused outright.
  const CtTuple fresh = tuple(0x0a000003, 41000, 0x0a000002, 80);
  CtAction snat;
  snat.nat = CtAction::Nat::kSource;
  snat.nat_ip = 0xc0000201;
  snat.port_min = 50000;
  snat.port_max = 50100;
  const CtOutcome refused = ct.process(fresh, net::kTcpSyn, 3000, snat);
  EXPECT_FALSE(refused.committed);
  EXPECT_EQ(refused.state, kCtInvalid);
  EXPECT_EQ(ct.stats().fenced_rejects, 1u);
  EXPECT_EQ(ct.stats().nat_allocated, 0u);
  EXPECT_EQ(ct.size(), 1u);

  // The established flow keeps its fast path: classification and
  // refresh still serve it — fencing stops state *minting*, not
  // forwarding.
  EXPECT_EQ(ct.classify(orig, net::kTcpAck, 3000), kCtTracked | kCtEstablished);
  const CtOutcome served = ct.process(orig, net::kTcpAck, 3000, kCommit);
  EXPECT_EQ(served.state, kCtTracked | kCtEstablished);

  // Unfencing restores commits.
  ct.set_fenced(false);
  EXPECT_TRUE(ct.process(fresh, net::kTcpSyn, 4000, kCommit).committed);
}

TEST(ConnTracker, DirtyTracksMutationsAndClearDirtyArmsSkip) {
  ConnTracker ct(CtConfig{}, 1);
  EXPECT_FALSE(ct.dirty());
  const CtTuple orig = tuple(0x0a000001, 40000, 0x0a000002, 80);
  ct.process(orig, net::kTcpSyn, 1000, kCommit);
  EXPECT_TRUE(ct.dirty());
  ct.clear_dirty();
  EXPECT_FALSE(ct.dirty());
  // A pure classification does not dirty; a refresh does.
  ct.classify(orig, net::kTcpAck, 2000);
  EXPECT_FALSE(ct.dirty());
  ct.process(orig, net::kTcpAck, 2000, kCommit);
  EXPECT_TRUE(ct.dirty());
}

TEST(ConnTracker, ResyncUpsertsAuthoritativelyAndDemotesUncovered) {
  ConnTracker active(CtConfig{}, 1);
  ConnTracker rejoining(CtConfig{}, 1);

  // The active holds two established connections (one NATed is not
  // needed — resync carries nat verbatim either way).
  const CtTuple c1 = tuple(0x0a000001, 40000, 0x0a000002, 80);
  const CtTuple c2 = tuple(0x0a000001, 40001, 0x0a000002, 80);
  for (const CtTuple& t : {c1, c2}) {
    active.process(t, net::kTcpSyn, 1000, kCommit);
    active.process(t.reversed(), net::kTcpSyn | net::kTcpAck, 2000, kCommit);
  }

  // The rejoining box has c1 (stale, pre-reply) plus a connection the
  // active never saw (minted during a split that fencing would have
  // prevented — resync must quarantine it).
  rejoining.process(c1, net::kTcpSyn, 1500, kCommit);
  const CtTuple ghost = tuple(0x0a000009, 49000, 0x0a000002, 80);
  rejoining.process(ghost, net::kTcpSyn, 1500, kCommit);
  rejoining.process(ghost.reversed(), net::kTcpSyn | net::kTcpAck, 1600, kCommit);

  const CtSnapshot image = active.checkpoint(3000);
  const std::size_t upserts = rejoining.resync(image, 4000);
  EXPECT_EQ(upserts, 2u);
  ASSERT_EQ(rejoining.size(), 3u);

  for (const ConnEntry& entry : rejoining.snapshot()) {
    if (entry.orig == ghost) {
      // Uncovered: demoted to unconfirmed with a transient deadline.
      EXPECT_FALSE(entry.confirmed);
      EXPECT_LE(entry.expires_at, 4000 + CtConfig{}.tcp_transient_timeout);
    } else {
      // Covered: confirmed, carrying the active's view (seen_reply even
      // for the locally-stale c1).
      EXPECT_TRUE(entry.confirmed);
      EXPECT_TRUE(entry.seen_reply);
    }
  }
}

TEST(ConnTracker, ResyncEvictsLocalCollisionsOnEitherTuple) {
  ConnTracker active(CtConfig{}, 1);
  ConnTracker rejoining(CtConfig{}, 1);

  // Active: c via SNAT — its reply tuple claims external port 50000.
  CtAction snat;
  snat.nat = CtAction::Nat::kSource;
  snat.nat_ip = 0xc0000201;
  snat.port_min = 50000;
  snat.port_max = 50000;
  const CtTuple c = tuple(0x0a000001, 40000, 0x0a000002, 80);
  ASSERT_TRUE(active.process(c, net::kTcpSyn, 1000, snat).committed);

  // Rejoining box: a *different* connection grabbed the same external
  // port during the split — the classic double-allocation conflict.
  const CtTuple other = tuple(0x0a000005, 45000, 0x0a000002, 80);
  ASSERT_TRUE(rejoining.process(other, net::kTcpSyn, 1000, snat).committed);

  rejoining.resync(active.checkpoint(2000), 3000);
  // The conflicting local connection was killed; the authoritative one
  // owns the port now.
  const auto entries = rejoining.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].orig, c);
  EXPECT_TRUE(entries[0].confirmed);
}

TEST(CtSnapshot, WireBytesMatchesSerializedSize) {
  ConnTracker ct(CtConfig{}, 1);
  for (int i = 0; i < 5; ++i) {
    const CtTuple t = tuple(0x0a000001 + static_cast<std::uint32_t>(i), 40000,
                            0x0a000002, 80);
    ct.process(t, net::kTcpSyn, 1000, kCommit);
  }
  const CtSnapshot snap = ct.checkpoint(2000);
  EXPECT_EQ(snap.wire_bytes(), snap.serialize().size());
  const CtSnapshot empty{};
  EXPECT_EQ(empty.wire_bytes(), empty.serialize().size());
}

}  // namespace
}  // namespace harmless::openflow

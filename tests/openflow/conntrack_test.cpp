// ConnTracker unit tests: the state machine, timeouts and expiry, LRU
// capacity bounds, and NAT allocation (including the shard-affinity
// property the symmetric-RSS datapath depends on).
#include <gtest/gtest.h>

#include "net/l4.hpp"
#include "openflow/conntrack.hpp"
#include "util/rng.hpp"

namespace harmless::openflow {
namespace {

constexpr std::uint8_t kTcp = 6;
constexpr std::uint8_t kUdp = 17;

CtTuple tuple(std::uint32_t src_ip, std::uint16_t src_port, std::uint32_t dst_ip,
              std::uint16_t dst_port, std::uint8_t proto = kTcp) {
  return CtTuple{src_ip, dst_ip, src_port, dst_port, proto};
}

const CtAction kCommit{};

TEST(ConnTracker, TcpLifecycleNewToEstablishedToClosing) {
  ConnTracker ct(CtConfig{}, 1);
  const CtTuple orig = tuple(0x0a000001, 40000, 0x0a000002, 80);

  // Before any commit: a SYN is NEW, a mid-stream segment is INVALID.
  EXPECT_EQ(ct.classify(orig, net::kTcpSyn, 0), kCtNew);
  EXPECT_EQ(ct.classify(orig, net::kTcpAck, 0), kCtInvalid);

  // SYN through ct: commits.
  const CtOutcome opened = ct.process(orig, net::kTcpSyn, 1000, kCommit);
  EXPECT_TRUE(opened.committed);
  EXPECT_EQ(opened.state & kCtNew, kCtNew);
  EXPECT_EQ(ct.size(), 1u);

  // Original direction, pre-reply: tracked but not yet established.
  EXPECT_EQ(ct.classify(orig, net::kTcpAck, 2000), kCtTracked);

  // Reply direction classifies ESTABLISHED immediately (it proves
  // bidirectionality), and its ct traversal flips seen_reply.
  const CtTuple reply = orig.reversed();
  EXPECT_EQ(ct.classify(reply, net::kTcpSyn | net::kTcpAck, 2000),
            kCtTracked | kCtReply | kCtEstablished);
  ct.process(reply, net::kTcpSyn | net::kTcpAck, 2000, kCommit);

  // Now the original direction is established too.
  EXPECT_EQ(ct.classify(orig, net::kTcpAck, 3000), kCtTracked | kCtEstablished);

  // FIN demotes the entry to the transient timeout.
  ct.process(orig, net::kTcpFin | net::kTcpAck, 4000, kCommit);
  const auto entries = ct.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].closing);
  EXPECT_TRUE(entries[0].seen_reply);
  EXPECT_EQ(entries[0].expires_at, 4000 + CtConfig{}.tcp_transient_timeout);
}

TEST(ConnTracker, UdpTracksWithoutFlagsAndIdlesOut) {
  CtConfig config;
  config.udp_timeout = 1'000;
  config.sweep_interval = 100;  // wheel buckets quantize up to this
  ConnTracker ct(config, 1);
  const CtTuple orig = tuple(0x0a000001, 5353, 0x0a000002, 53, kUdp);

  EXPECT_EQ(ct.classify(orig, 0, 0), kCtNew);  // no SYN requirement for UDP
  ct.process(orig, 0, 100, kCommit);
  EXPECT_EQ(ct.classify(orig, 0, 500), kCtTracked);

  // Idle past udp_timeout: the sweep reaps it.
  EXPECT_EQ(ct.expire(2'000), 1u);
  EXPECT_EQ(ct.size(), 0u);
  EXPECT_EQ(ct.stats().expired, 1u);
  EXPECT_EQ(ct.classify(orig, 0, 2'001), kCtNew);
}

TEST(ConnTracker, RefreshExtendsDeadlineAcrossStaleWheelBuckets) {
  CtConfig config;
  config.udp_timeout = 1'000;
  config.sweep_interval = 100;
  ConnTracker ct(config, 1);
  const CtTuple orig = tuple(1, 1, 2, 2, kUdp);
  ct.process(orig, 0, 0, kCommit);
  // Refresh just before the original deadline; the stale wheel bucket
  // must re-file, not kill.
  ct.process(orig, 0, 900, kCommit);
  EXPECT_EQ(ct.expire(1'000), 0u);
  EXPECT_EQ(ct.size(), 1u);
  EXPECT_EQ(ct.expire(2'000), 1u);
}

TEST(ConnTracker, LruEvictsOldestAtCapacity) {
  CtConfig config;
  config.max_connections = 4;
  ConnTracker ct(config, 1);
  for (std::uint16_t i = 0; i < 4; ++i)
    ct.process(tuple(100 + i, i, 200, 80, kUdp), 0, i, kCommit);
  // Touch connection 0 so connection 1 is the LRU victim.
  ct.process(tuple(100, 0, 200, 80, kUdp), 0, 10, kCommit);

  ct.process(tuple(500, 9, 200, 80, kUdp), 0, 20, kCommit);
  EXPECT_EQ(ct.size(), 4u);
  EXPECT_EQ(ct.stats().evicted, 1u);
  EXPECT_EQ(ct.classify(tuple(101, 1, 200, 80, kUdp), 0, 21), kCtNew);    // evicted
  EXPECT_EQ(ct.classify(tuple(100, 0, 200, 80, kUdp), 0, 21), kCtTracked);  // survived
}

TEST(ConnTracker, SnatAllocatesDistinctPortsAndTranslatesBothWays) {
  ConnTracker ct(CtConfig{}, 1);
  const CtAction snat{CtAction::Nat::kSource, 0xc0a80001, 49152, 65535};

  // Two inside hosts using the same source port must get distinct
  // external ports.
  const CtOutcome a = ct.process(tuple(0x0a000001, 40000, 0x08080808, 80), net::kTcpSyn, 0, snat);
  const CtOutcome b = ct.process(tuple(0x0a000002, 40000, 0x08080808, 80), net::kTcpSyn, 0, snat);
  ASSERT_TRUE(a.rewrite);
  ASSERT_TRUE(b.rewrite);
  EXPECT_TRUE(a.translation.src);
  EXPECT_EQ(a.translation.src_ip, 0xc0a80001u);
  EXPECT_NE(a.translation.src_port, b.translation.src_port);
  EXPECT_EQ(ct.stats().nat_allocated, 2u);

  // The reply to the translated tuple maps back to the inside host.
  const CtTuple reply = tuple(0x08080808, 80, 0xc0a80001, a.translation.src_port);
  const CtOutcome back = ct.process(reply, net::kTcpAck, 100, kCommit);
  ASSERT_TRUE(back.rewrite);
  EXPECT_TRUE(back.translation.dst);
  EXPECT_EQ(back.translation.dst_ip, 0x0a000001u);
  EXPECT_EQ(back.translation.dst_port, 40000u);
  EXPECT_EQ(back.state & kCtEstablished, kCtEstablished);
}

TEST(ConnTracker, SnatRepliesHashToTheCommittingShard) {
  // The allocator property the sharded datapath depends on: the
  // translated reply tuple must steer (symmetric hash % shards) to the
  // same virtual shard as the original direction, for every shard
  // count the benches use.
  util::Rng rng(7);
  for (const std::size_t shards : {1UL, 2UL, 4UL, 8UL}) {
    CtConfig config;
    config.nat_steer_shards = shards;
    ConnTracker ct(config, 1);
    const CtAction snat{CtAction::Nat::kSource, 0xc0a80001, 49152, 65535};
    for (int i = 0; i < 200; ++i) {
      const CtTuple orig = tuple(0x0a000000 + static_cast<std::uint32_t>(rng.below(1 << 16)),
                                 static_cast<std::uint16_t>(1024 + rng.below(60000)),
                                 0x08080808, 443);
      const CtOutcome out = ct.process(orig, net::kTcpSyn, i, snat);
      ASSERT_TRUE(out.rewrite);
      const CtTuple reply =
          tuple(orig.dst_ip, orig.dst_port, out.translation.src_ip, out.translation.src_port);
      EXPECT_EQ(reply.symmetric_hash() % shards, orig.symmetric_hash() % shards)
          << "shards=" << shards << " i=" << i;
    }
    EXPECT_EQ(ct.stats().nat_failures, 0u);
  }
}

TEST(ConnTracker, DnatStoresMappingAndUntranslatesReplies) {
  ConnTracker ct(CtConfig{}, 1);
  const CtAction dnat{CtAction::Nat::kDest, 0x0a000063, 0, 0};  // keep dst port

  const CtTuple orig = tuple(0xac100001, 30000, 0x0a000064, 80);  // client -> VIP
  const CtOutcome fwd = ct.process(orig, net::kTcpSyn, 0, dnat);
  ASSERT_TRUE(fwd.rewrite);
  EXPECT_TRUE(fwd.translation.dst);
  EXPECT_EQ(fwd.translation.dst_ip, 0x0a000063u);
  EXPECT_EQ(fwd.translation.dst_port, 80u);  // port preserved

  // Backend's reply: restore the VIP as source.
  const CtTuple reply = tuple(0x0a000063, 80, 0xac100001, 30000);
  const CtOutcome back = ct.process(reply, net::kTcpAck, 100, kCommit);
  ASSERT_TRUE(back.rewrite);
  EXPECT_TRUE(back.translation.src);
  EXPECT_EQ(back.translation.src_ip, 0x0a000064u);
  EXPECT_EQ(back.translation.src_port, 80u);

  // Later original-direction packets re-derive the same mapping even
  // through a plain (non-NAT) ct action — the stored mapping wins.
  const CtOutcome again = ct.process(orig, net::kTcpAck, 200, kCommit);
  ASSERT_TRUE(again.rewrite);
  EXPECT_EQ(again.translation.dst_ip, 0x0a000063u);
  EXPECT_EQ(ct.stats().nat_allocated, 1u);
}

TEST(ConnTracker, NextDeadlineDrivesSweepScheduling) {
  CtConfig config;
  config.udp_timeout = 1'000;
  config.sweep_interval = 500;
  ConnTracker ct(config, 1);
  EXPECT_FALSE(ct.next_deadline().has_value());
  ct.process(tuple(1, 1, 2, 2, kUdp), 0, 500, kCommit);
  // expires_at = 1'500, quantized up to the 500ns wheel bucket.
  const auto deadline = ct.next_deadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_EQ(*deadline, 1'500);
  ct.clear();
  EXPECT_FALSE(ct.next_deadline().has_value());
  EXPECT_EQ(ct.size(), 0u);
}

}  // namespace
}  // namespace harmless::openflow

// FlowTable semantics under both matchers: priority lookup, add/replace,
// strict/non-strict modify/delete, overlap checking, timeouts, counters.
#include <gtest/gtest.h>

#include "net/build.hpp"
#include "openflow/flow_table.hpp"

namespace harmless::openflow {
namespace {

using namespace net;

FlowKey flow(std::uint8_t last_octet = 2) {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x02aa);
  key.eth_dst = MacAddr::from_u64(0x02bb);
  key.ip_src = Ipv4Addr(10, 0, 0, 1);
  key.ip_dst = Ipv4Addr(10, 0, 0, last_octet);
  key.src_port = 1000;
  key.dst_port = 80;
  return key;
}

FieldView view_of(const Packet& packet, std::uint32_t in_port = 1) {
  return build_field_view(parse_packet(packet), in_port);
}

FlowEntry entry(std::uint16_t priority, Match match, std::uint32_t out_port,
                std::uint64_t cookie = 0) {
  FlowEntry e;
  e.priority = priority;
  e.match = std::move(match);
  e.instructions = apply({output(out_port)});
  e.cookie = cookie;
  return e;
}

std::uint32_t out_port_of(const FlowEntry* e) {
  return std::get<OutputAction>(e->instructions.apply_actions.at(0)).port;
}

class FlowTableBothMatchers : public ::testing::TestWithParam<bool> {
 protected:
  FlowTableBothMatchers() : table_(0, /*specialized=*/GetParam()) {}
  FlowTable table_;
  LookupCost cost_;
};

TEST_P(FlowTableBothMatchers, HighestPriorityWins) {
  ASSERT_TRUE(table_.add(entry(10, Match().ip_dst(Ipv4Addr(10, 0, 0, 2)), 1), 0).is_ok());
  ASSERT_TRUE(table_.add(entry(20, Match().l4_dst(80), 2), 0).is_ok());
  ASSERT_TRUE(table_.add(entry(5, Match(), 3), 0).is_ok());

  FlowEntry* hit = table_.lookup(view_of(make_udp(flow(), 64)), 64, 0, cost_);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(out_port_of(hit), 2u);  // priority 20 beats 10 and 5

  // A packet matching only the wildcard.
  FlowKey other = flow();
  other.ip_dst = Ipv4Addr(1, 1, 1, 1);
  other.dst_port = 9999;
  hit = table_.lookup(view_of(make_udp(other, 64)), 64, 0, cost_);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(out_port_of(hit), 3u);
}

TEST_P(FlowTableBothMatchers, EmptyTableMisses) {
  EXPECT_EQ(table_.lookup(view_of(make_udp(flow(), 64)), 64, 0, cost_), nullptr);
  EXPECT_EQ(table_.counters().lookups, 1u);
  EXPECT_EQ(table_.counters().matches, 0u);
}

TEST_P(FlowTableBothMatchers, AddIdenticalMatchReplaces) {
  ASSERT_TRUE(table_.add(entry(10, Match().l4_dst(80), 1), 0).is_ok());
  ASSERT_TRUE(table_.add(entry(10, Match().l4_dst(80), 9), 0).is_ok());
  EXPECT_EQ(table_.size(), 1u);
  FlowEntry* hit = table_.lookup(view_of(make_udp(flow(), 64)), 64, 0, cost_);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(out_port_of(hit), 9u);
}

TEST_P(FlowTableBothMatchers, SamePriorityDifferentMatchCoexist) {
  ASSERT_TRUE(table_.add(entry(10, Match().l4_dst(80), 1), 0).is_ok());
  ASSERT_TRUE(table_.add(entry(10, Match().l4_dst(443), 2), 0).is_ok());
  EXPECT_EQ(table_.size(), 2u);
}

TEST_P(FlowTableBothMatchers, OverlapCheckRejects) {
  ASSERT_TRUE(table_.add(entry(10, Match().l4_dst(80), 1), 0).is_ok());
  // Overlapping (not identical) match at same priority with check on.
  auto status =
      table_.add(entry(10, Match().ip_src(Ipv4Addr(10, 0, 0, 1)), 2), 0, /*check=*/true);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(table_.size(), 1u);
  // Different priority: overlap is fine.
  EXPECT_TRUE(
      table_.add(entry(11, Match().ip_src(Ipv4Addr(10, 0, 0, 1)), 2), 0, true).is_ok());
}

TEST_P(FlowTableBothMatchers, NonStrictDeleteUsesSubsumption) {
  ASSERT_TRUE(table_.add(entry(10, Match().l4_dst(80), 1), 0).is_ok());
  ASSERT_TRUE(table_.add(entry(20, Match().l4_dst(80).ip_src(Ipv4Addr(10, 0, 0, 1)), 2), 0)
                  .is_ok());
  ASSERT_TRUE(table_.add(entry(30, Match().l4_dst(443), 3), 0).is_ok());

  const auto removed = table_.remove(Match().l4_dst(80), /*strict=*/false);
  EXPECT_EQ(removed.size(), 2u);  // both port-80 rules (one more specific)
  EXPECT_EQ(table_.size(), 1u);
}

TEST_P(FlowTableBothMatchers, StrictDeleteNeedsExactMatchAndPriority) {
  ASSERT_TRUE(table_.add(entry(10, Match().l4_dst(80), 1), 0).is_ok());
  EXPECT_TRUE(table_.remove(Match().l4_dst(80), /*strict=*/true, /*priority=*/11).empty());
  EXPECT_EQ(table_.remove(Match().l4_dst(80), /*strict=*/true, /*priority=*/10).size(), 1u);
  EXPECT_TRUE(table_.empty());
}

TEST_P(FlowTableBothMatchers, ModifyRewritesInstructionsKeepsCounters) {
  ASSERT_TRUE(table_.add(entry(10, Match().l4_dst(80), 1), 0).is_ok());
  (void)table_.lookup(view_of(make_udp(flow(), 64)), 64, 0, cost_);

  EXPECT_EQ(table_.modify(Match().l4_dst(80), apply({output(7)}), /*strict=*/false), 1u);
  FlowEntry* hit = table_.lookup(view_of(make_udp(flow(), 64)), 64, 0, cost_);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(out_port_of(hit), 7u);
  EXPECT_EQ(hit->packet_count, 2u);  // counters survived the modify
}

TEST_P(FlowTableBothMatchers, RemoveByCookie) {
  ASSERT_TRUE(table_.add(entry(10, Match().l4_dst(80), 1, /*cookie=*/111), 0).is_ok());
  ASSERT_TRUE(table_.add(entry(11, Match().l4_dst(443), 2, /*cookie=*/222), 0).is_ok());
  EXPECT_EQ(table_.remove_by_cookie(111).size(), 1u);
  EXPECT_EQ(table_.size(), 1u);
}

TEST_P(FlowTableBothMatchers, IdleTimeoutExpiresWithoutTraffic) {
  FlowEntry timed = entry(10, Match().l4_dst(80), 1);
  timed.idle_timeout = 1000;
  ASSERT_TRUE(table_.add(std::move(timed), /*now=*/0).is_ok());

  // Traffic at t=500 refreshes the idle clock.
  EXPECT_NE(table_.lookup(view_of(make_udp(flow(), 64)), 64, 500, cost_), nullptr);
  // Still alive at t=1400 (last hit 500).
  EXPECT_NE(table_.lookup(view_of(make_udp(flow(), 64)), 64, 1400, cost_), nullptr);
  // Dead at t=3000.
  EXPECT_EQ(table_.lookup(view_of(make_udp(flow(), 64)), 64, 3000, cost_), nullptr);
  EXPECT_TRUE(table_.empty());  // lazy expiry removed it
}

TEST_P(FlowTableBothMatchers, HardTimeoutIgnoresTraffic) {
  FlowEntry timed = entry(10, Match().l4_dst(80), 1);
  timed.hard_timeout = 1000;
  ASSERT_TRUE(table_.add(std::move(timed), /*now=*/0).is_ok());
  EXPECT_NE(table_.lookup(view_of(make_udp(flow(), 64)), 64, 999, cost_), nullptr);
  EXPECT_EQ(table_.lookup(view_of(make_udp(flow(), 64)), 64, 1001, cost_), nullptr);
}

TEST_P(FlowTableBothMatchers, CollectExpiredSweeps) {
  FlowEntry timed = entry(10, Match().l4_dst(80), 1, /*cookie=*/77);
  timed.hard_timeout = 100;
  ASSERT_TRUE(table_.add(std::move(timed), 0).is_ok());
  ASSERT_TRUE(table_.add(entry(11, Match().l4_dst(443), 2), 0).is_ok());

  EXPECT_TRUE(table_.collect_expired(50).empty());
  const auto expired = table_.collect_expired(200);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].cookie, 77u);
  EXPECT_EQ(table_.size(), 1u);
}

TEST_P(FlowTableBothMatchers, CountersAccumulateBytes) {
  ASSERT_TRUE(table_.add(entry(10, Match(), 1), 0).is_ok());
  (void)table_.lookup(view_of(make_udp(flow(), 100)), 100, 0, cost_);
  (void)table_.lookup(view_of(make_udp(flow(), 200)), 200, 0, cost_);
  const auto entries = table_.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0]->packet_count, 2u);
  EXPECT_EQ(entries[0]->byte_count, 300u);
}

TEST_P(FlowTableBothMatchers, EntriesSnapshotSortedByPriority) {
  ASSERT_TRUE(table_.add(entry(5, Match().l4_dst(81), 1), 0).is_ok());
  ASSERT_TRUE(table_.add(entry(50, Match().l4_dst(82), 2), 0).is_ok());
  ASSERT_TRUE(table_.add(entry(20, Match().l4_dst(83), 3), 0).is_ok());
  const auto entries = table_.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0]->priority, 50);
  EXPECT_EQ(entries[1]->priority, 20);
  EXPECT_EQ(entries[2]->priority, 5);
}

INSTANTIATE_TEST_SUITE_P(LinearAndSpecialized, FlowTableBothMatchers, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "specialized" : "linear";
                         });

TEST(FlowEntry, ToStringMentionsMatchAndActions) {
  const FlowEntry e = entry(42, Match().l4_dst(80), 3);
  const std::string text = e.to_string();
  EXPECT_NE(text.find("prio=42"), std::string::npos);
  EXPECT_NE(text.find("l4_dst=80"), std::string::npos);
  EXPECT_NE(text.find("output:3"), std::string::npos);
}

}  // namespace
}  // namespace harmless::openflow

// Differential property test: for any rule set and any packet, the
// specialized (ESwitch-style) matcher must return a result equivalent
// to the linear reference matcher — same hit/miss, same priority, and
// an actually-matching entry. Rule sets and packets are generated
// pseudo-randomly from pools sized so collisions and overlaps happen
// constantly.
#include <gtest/gtest.h>

#include "net/build.hpp"
#include "openflow/flow_table.hpp"
#include "util/rng.hpp"

namespace harmless::openflow {
namespace {

using namespace net;

struct Pools {
  std::vector<MacAddr> macs;
  std::vector<Ipv4Addr> ips;
  std::vector<std::uint16_t> ports{80, 443, 8080, 22};
  std::vector<std::uint32_t> in_ports{1, 2, 3, 4};

  explicit Pools(util::Rng& rng) {
    for (int i = 0; i < 6; ++i) macs.push_back(MacAddr::from_u64(0x020000000000 | i));
    for (int i = 0; i < 6; ++i)
      ips.push_back(Ipv4Addr(10, 0, static_cast<std::uint8_t>(rng.below(2)),
                             static_cast<std::uint8_t>(i)));
  }
};

Match random_match(util::Rng& rng, const Pools& pools) {
  Match match;
  if (rng.chance(0.4))
    match.in_port(pools.in_ports[rng.below(pools.in_ports.size())]);
  if (rng.chance(0.4)) match.eth_dst(pools.macs[rng.below(pools.macs.size())]);
  if (rng.chance(0.3)) match.eth_src(pools.macs[rng.below(pools.macs.size())]);
  if (rng.chance(0.5)) {
    match.eth_type(0x0800);
    if (rng.chance(0.5)) {
      if (rng.chance(0.3)) {
        // Prefix (wildcard shape).
        match.ip_dst_prefix(pools.ips[rng.below(pools.ips.size())],
                            static_cast<int>(8 + rng.below(24)));
      } else {
        match.ip_dst(pools.ips[rng.below(pools.ips.size())]);
      }
    }
    if (rng.chance(0.3)) match.ip_src(pools.ips[rng.below(pools.ips.size())]);
    if (rng.chance(0.4)) {
      match.ip_proto(17);
      if (rng.chance(0.6)) match.l4_dst(pools.ports[rng.below(pools.ports.size())]);
    }
  } else if (rng.chance(0.2)) {
    match.vlan_vid(static_cast<VlanId>(100 + rng.below(4)));
  } else if (rng.chance(0.2)) {
    match.vlan_absent();
  }
  return match;
}

Packet random_packet(util::Rng& rng, const Pools& pools) {
  FlowKey key;
  key.eth_src = pools.macs[rng.below(pools.macs.size())];
  key.eth_dst = pools.macs[rng.below(pools.macs.size())];
  key.ip_src = pools.ips[rng.below(pools.ips.size())];
  key.ip_dst = pools.ips[rng.below(pools.ips.size())];
  key.src_port = 1000;
  key.dst_port = pools.ports[rng.below(pools.ports.size())];
  Packet packet = rng.chance(0.85)
                      ? make_udp(key, 64 + rng.below(200))
                      : make_arp_request(key.eth_src, key.ip_src, key.ip_dst);
  if (rng.chance(0.3))
    vlan_push(packet.frame(), VlanTag{static_cast<VlanId>(100 + rng.below(4)), 0, false});
  return packet;
}

class MatcherDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherDifferential, SpecializedAgreesWithLinear) {
  util::Rng rng(GetParam());
  Pools pools(rng);

  const std::size_t rule_count = 1 + rng.below(60);
  std::vector<std::unique_ptr<FlowEntry>> owned;
  std::vector<FlowEntry*> raw;
  for (std::size_t i = 0; i < rule_count; ++i) {
    auto entry = std::make_unique<FlowEntry>();
    entry->priority = static_cast<std::uint16_t>(rng.below(40));
    entry->match = random_match(rng, pools);
    entry->instructions = apply({output(static_cast<std::uint32_t>(i + 1))});
    raw.push_back(entry.get());
    owned.push_back(std::move(entry));
  }

  LinearMatcher linear;
  SpecializedMatcher specialized;
  linear.rebuild(raw);
  specialized.rebuild(raw);

  for (int trial = 0; trial < 300; ++trial) {
    const Packet packet = random_packet(rng, pools);
    const FieldView view = build_field_view(parse_packet(packet),
                                            pools.in_ports[rng.below(pools.in_ports.size())]);
    LookupCost cost_linear, cost_specialized;
    FlowEntry* expect = linear.lookup(view, cost_linear);
    FlowEntry* actual = specialized.lookup(view, cost_specialized);

    if (expect == nullptr) {
      EXPECT_EQ(actual, nullptr) << "seed=" << GetParam() << " trial=" << trial;
      continue;
    }
    ASSERT_NE(actual, nullptr) << "seed=" << GetParam() << " trial=" << trial << " expected "
                               << expect->to_string();
    // Ties at equal priority may resolve to different entries; both
    // must genuinely match and carry the same (maximal) priority.
    EXPECT_EQ(actual->priority, expect->priority)
        << "seed=" << GetParam() << " trial=" << trial;
    EXPECT_TRUE(actual->match.matches(view));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(SpecializedMatcher, CompilesExactShapesToHashTables) {
  // 1000 exact L2 rules + 1 wildcard: lookups must not scan 1000.
  std::vector<std::unique_ptr<FlowEntry>> owned;
  std::vector<FlowEntry*> raw;
  for (int i = 0; i < 1000; ++i) {
    auto entry = std::make_unique<FlowEntry>();
    entry->priority = 10;
    entry->match = Match().eth_dst(MacAddr::from_u64(0x020000000000ULL + i));
    entry->instructions = apply({output(1)});
    raw.push_back(entry.get());
    owned.push_back(std::move(entry));
  }
  auto wildcard = std::make_unique<FlowEntry>();
  wildcard->priority = 1;
  wildcard->instructions = apply({output(2)});
  raw.push_back(wildcard.get());
  owned.push_back(std::move(wildcard));

  SpecializedMatcher matcher;
  matcher.rebuild(raw);
  EXPECT_EQ(matcher.shape_count(), 2u);  // one hashed shape + one wildcard

  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x02ff);
  key.eth_dst = MacAddr::from_u64(0x020000000000ULL + 777);
  const FieldView view = build_field_view(parse_packet(make_udp(key, 64)), 1);
  LookupCost cost;
  FlowEntry* hit = matcher.lookup(view, cost);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 10);
  EXPECT_EQ(cost.hash_probes, 1u);
  EXPECT_LE(cost.entries_scanned, 2u);  // bucket verify + nothing linear
}

TEST(LinearMatcher, CostGrowsWithTableSize) {
  std::vector<std::unique_ptr<FlowEntry>> owned;
  std::vector<FlowEntry*> raw;
  for (int i = 0; i < 500; ++i) {
    auto entry = std::make_unique<FlowEntry>();
    entry->priority = 10;
    entry->match = Match().l4_dst(static_cast<std::uint16_t>(i));
    entry->instructions = apply({output(1)});
    raw.push_back(entry.get());
    owned.push_back(std::move(entry));
  }
  LinearMatcher matcher;
  matcher.rebuild(raw);

  FlowKey key;
  key.eth_src = MacAddr::from_u64(1);
  key.eth_dst = MacAddr::from_u64(2);
  key.dst_port = 499;  // the last rule
  const FieldView view = build_field_view(parse_packet(make_udp(key, 64)), 1);
  LookupCost cost;
  ASSERT_NE(matcher.lookup(view, cost), nullptr);
  EXPECT_EQ(cost.entries_scanned, 500u);
}

TEST(Matchers, FactorySelects) {
  EXPECT_STREQ(make_matcher(false)->name(), "linear");
  EXPECT_STREQ(make_matcher(true)->name(), "specialized");
}

}  // namespace
}  // namespace harmless::openflow

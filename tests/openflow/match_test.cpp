// Match semantics: field constraints, masks, VLAN present/absent
// encoding, subsumption, overlap, exactness.
#include <gtest/gtest.h>

#include "net/build.hpp"
#include "openflow/match.hpp"

namespace harmless::openflow {
namespace {

using namespace net;

FieldView view_of(const Packet& packet, std::uint32_t in_port) {
  return build_field_view(parse_packet(packet), in_port);
}

FlowKey flow() {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x02aa);
  key.eth_dst = MacAddr::from_u64(0x02bb);
  key.ip_src = Ipv4Addr(10, 1, 0, 5);
  key.ip_dst = Ipv4Addr(10, 2, 0, 9);
  key.src_port = 4242;
  key.dst_port = 80;
  return key;
}

TEST(FieldView, ProjectsAllLayers) {
  const FieldView view = view_of(make_udp(flow(), 100), 7);
  EXPECT_EQ(view.get(Field::kInPort), 7u);
  EXPECT_EQ(view.get(Field::kEthSrc), 0x02aau);
  EXPECT_EQ(view.get(Field::kEthType), 0x0800u);
  EXPECT_EQ(view.get(Field::kVlanVid), 0u);  // untagged -> OFPVID_NONE
  EXPECT_EQ(view.get(Field::kIpProto), 17u);
  EXPECT_EQ(view.get(Field::kIpDst), Ipv4Addr(10, 2, 0, 9).value());
  EXPECT_EQ(view.get(Field::kL4Dst), 80u);
  EXPECT_FALSE(view.has(Field::kArpOp));
}

TEST(FieldView, TaggedPacketSetsPresenceBit) {
  Packet packet = make_udp(flow(), 100);
  vlan_push(packet.frame(), VlanTag{101, 3, false});
  const FieldView view = view_of(packet, 1);
  EXPECT_EQ(view.get(Field::kVlanVid), kVlanPresent | 101);
  EXPECT_EQ(view.get(Field::kVlanPcp), 3u);
}

TEST(Match, WildcardMatchesEverything) {
  const Match match;
  EXPECT_TRUE(match.is_wildcard_all());
  EXPECT_TRUE(match.matches(view_of(make_udp(flow(), 64), 1)));
  EXPECT_TRUE(match.matches(view_of(make_arp_request(flow().eth_src, flow().ip_src,
                                                     flow().ip_dst),
                                    9)));
}

TEST(Match, ExactFieldsMatchAndReject) {
  const Match match = Match().in_port(3).ip_dst(flow().ip_dst);
  EXPECT_TRUE(match.matches(view_of(make_udp(flow(), 64), 3)));
  EXPECT_FALSE(match.matches(view_of(make_udp(flow(), 64), 4)));  // wrong port
  FlowKey other = flow();
  other.ip_dst = Ipv4Addr(9, 9, 9, 9);
  EXPECT_FALSE(match.matches(view_of(make_udp(other, 64), 3)));
}

TEST(Match, MissingFieldMeansNoMatch) {
  // ARP packets have no IP fields: an ip_dst constraint cannot match.
  const Match match = Match().ip_dst(flow().ip_dst);
  const Packet arp = make_arp_request(flow().eth_src, flow().ip_src, flow().ip_dst);
  EXPECT_FALSE(match.matches(view_of(arp, 1)));
}

TEST(Match, VlanPresentAbsentSemantics) {
  Packet untagged = make_udp(flow(), 64);
  Packet tagged = make_udp(flow(), 64);
  vlan_push(tagged.frame(), VlanTag{101, 0, false});

  EXPECT_TRUE(Match().vlan_absent().matches(view_of(untagged, 1)));
  EXPECT_FALSE(Match().vlan_absent().matches(view_of(tagged, 1)));
  EXPECT_TRUE(Match().vlan_vid(101).matches(view_of(tagged, 1)));
  EXPECT_FALSE(Match().vlan_vid(102).matches(view_of(tagged, 1)));
  EXPECT_FALSE(Match().vlan_vid(101).matches(view_of(untagged, 1)));
  EXPECT_TRUE(Match().vlan_any().matches(view_of(tagged, 1)));
  EXPECT_FALSE(Match().vlan_any().matches(view_of(untagged, 1)));
}

TEST(Match, PrefixMasksMatchSubnets) {
  const Match match = Match().ip_src_prefix(Ipv4Addr(10, 1, 0, 0), 16);
  EXPECT_TRUE(match.matches(view_of(make_udp(flow(), 64), 1)));  // 10.1.0.5
  FlowKey outside = flow();
  outside.ip_src = Ipv4Addr(10, 2, 0, 5);
  EXPECT_FALSE(match.matches(view_of(make_udp(outside, 64), 1)));
  EXPECT_FALSE(match.all_exact());
}

TEST(Match, AllExactDetection) {
  EXPECT_TRUE(Match().in_port(1).eth_dst(MacAddr::from_u64(5)).all_exact());
  EXPECT_FALSE(Match().ip_dst_prefix(Ipv4Addr(10, 0, 0, 0), 8).all_exact());
  EXPECT_FALSE(Match().all_exact());  // empty match is not hashable
}

TEST(Match, SubsumptionRules) {
  const Match general = Match().eth_type(0x0800);
  const Match specific = Match().eth_type(0x0800).ip_dst(flow().ip_dst);
  EXPECT_TRUE(general.subsumes(specific));
  EXPECT_FALSE(specific.subsumes(general));
  EXPECT_TRUE(Match().subsumes(general));  // wildcard subsumes all
  EXPECT_TRUE(general.subsumes(general));

  const Match prefix16 = Match().ip_src_prefix(Ipv4Addr(10, 1, 0, 0), 16);
  const Match prefix24 = Match().ip_src_prefix(Ipv4Addr(10, 1, 2, 0), 24);
  EXPECT_TRUE(prefix16.subsumes(prefix24));
  EXPECT_FALSE(prefix24.subsumes(prefix16));
  // Disjoint prefixes: no subsumption either way.
  const Match other16 = Match().ip_src_prefix(Ipv4Addr(10, 9, 0, 0), 16);
  EXPECT_FALSE(other16.subsumes(prefix24));
}

TEST(Match, OverlapRules) {
  const Match port80 = Match().l4_dst(80);
  const Match srcA = Match().ip_src(Ipv4Addr(1, 1, 1, 1));
  EXPECT_TRUE(port80.overlaps(srcA));  // disjoint fields can coexist
  const Match port443 = Match().l4_dst(443);
  EXPECT_FALSE(port80.overlaps(port443));
  const Match port80srcA = Match().l4_dst(80).ip_src(Ipv4Addr(1, 1, 1, 1));
  EXPECT_TRUE(port80.overlaps(port80srcA));
  EXPECT_FALSE(port443.overlaps(port80srcA));
}

TEST(Match, EqualityIsStructural) {
  EXPECT_EQ(Match().in_port(1).l4_dst(80), Match().l4_dst(80).in_port(1));
  EXPECT_NE(Match().in_port(1), Match().in_port(2));
  EXPECT_NE(Match().ip_src_prefix(Ipv4Addr(10, 0, 0, 0), 8),
            Match().ip_src_prefix(Ipv4Addr(10, 0, 0, 0), 16));
}

TEST(Match, ToStringIsReadable) {
  const std::string text =
      Match().in_port(3).vlan_vid(101).ip_dst(Ipv4Addr(10, 0, 0, 2)).to_string();
  EXPECT_NE(text.find("in_port=3"), std::string::npos);
  EXPECT_NE(text.find("vlan_vid=101"), std::string::npos);
  EXPECT_NE(text.find("ip_dst=10.0.0.2"), std::string::npos);
  EXPECT_EQ(Match().to_string(), "*");
  EXPECT_NE(Match().vlan_absent().to_string().find("untagged"), std::string::npos);
}

TEST(Match, ArpFieldsMatchable) {
  const Packet arp = make_arp_request(flow().eth_src, flow().ip_src, flow().ip_dst);
  EXPECT_TRUE(Match().arp_op(1).matches(view_of(arp, 1)));
  EXPECT_FALSE(Match().arp_op(2).matches(view_of(arp, 1)));
}

}  // namespace
}  // namespace harmless::openflow

// Scheduler-coherence theorems, as differential property tests (the
// cache_equivalence_test.cpp approach, one layer up: the ingress).
//
// The per-port RX queue refactor must be invisible under FCFS: for ANY
// interleaving of arrivals across ports (including simultaneous
// bursts, tight buffers, and every burst size), the production
// ServicedNode draining per-port queues through FcfsScheduler must be
// observationally identical — service order, service times, drops,
// busy time, burst count — to the pre-refactor shared FIFO, which is
// reimplemented here verbatim as the reference model.
//
// Two more coherence properties pin down the scheduler API itself:
// with a single active ingress port every scheduler degenerates to
// FCFS (full SoftSwitch observables, under random packet/flow-mod
// interleavings), and under drained-between-waves multi-port load the
// scheduler choice may reorder service but must never change *what* is
// delivered, matched, or counted.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "bench/common.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace harmless {
namespace {

using namespace net;
using bench::NativeRig;
using bench::RigOptions;
using sim::Engine;
using sim::SimNanos;

// ---- Part 1: FCFS over per-port queues == the shared FIFO ------------

/// Size-dependent per-packet cost shared by the reference and the
/// probe, so service completion times (and hence drain/admission
/// timing) depend on the packet mix, not just the packet count.
SimNanos service_cost(const net::Packet& packet) {
  return 40 + static_cast<SimNanos>(packet.size() % 7) * 13;
}

struct Served {
  SimNanos at;
  int in_port;
  net::Bytes frame;
  friend bool operator==(const Served&, const Served&) = default;
};

/// The pre-refactor ServicedNode, reimplemented verbatim: one shared
/// bounded FIFO, drained FCFS in bursts, per-packet when burst <= 1.
class SharedFifoRef final : public sim::Node {
 public:
  SharedFifoRef(Engine& engine, std::size_t capacity, std::size_t burst)
      : Node(engine, "ref"), capacity_(capacity), burst_(burst == 0 ? 1 : burst) {
    ensure_ports(1);
  }

  std::vector<Served> log;
  std::uint64_t drops = 0;
  std::uint64_t bursts = 0;
  SimNanos busy_ns = 0;

  void handle(int in_port, net::Packet&& packet) override {
    if (queue_.size() >= capacity_) {
      ++drops;
      return;
    }
    queue_.emplace_back(in_port, std::move(packet));
    if (!draining_) {
      draining_ = true;
      engine_.schedule_at(std::max(engine_.now(), busy_until_), [this] { drain(); });
    }
  }

 private:
  void drain() {
    if (queue_.empty()) {
      draining_ = false;
      return;
    }
    SimNanos cost = 0;
    const std::size_t count = burst_ <= 1 ? 1 : std::min(queue_.size(), burst_);
    for (std::size_t i = 0; i < count; ++i) {
      auto [in_port, packet] = std::move(queue_.front());
      queue_.pop_front();
      cost += service_cost(packet);
      log.push_back(Served{engine_.now(), in_port, packet.frame()});
    }
    ++bursts;
    busy_ns += cost;
    busy_until_ = engine_.now() + cost;
    engine_.schedule_at(busy_until_, [this] { drain(); });
  }

  std::size_t capacity_;
  std::size_t burst_;
  std::deque<std::pair<int, net::Packet>> queue_;
  bool draining_ = false;
  SimNanos busy_until_ = 0;
};

/// The production datapath under test: per-port RX queues + a
/// scheduler, FCFS by default.
class SchedulerProbe final : public sim::ServicedNode {
 public:
  SchedulerProbe(Engine& engine, std::size_t capacity, std::size_t burst,
                 sim::SchedulerSpec scheduler = {})
      : ServicedNode(
            engine, "probe",
            sim::IngressSpec{.queue_capacity = capacity, .scheduler = scheduler, .cores = {}},
            burst) {
    ensure_ports(1);
  }

  std::vector<Served> log;

 protected:
  SimNanos service(int in_port, net::Packet&& packet) override {
    log.push_back(Served{engine_.now(), in_port, packet.frame()});
    return service_cost(packet);
  }
};

net::Packet tagged_packet(std::uint16_t id, std::size_t size) {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x0200000000a0ULL);
  key.eth_dst = MacAddr::from_u64(0x0200000000b0ULL);
  key.ip_src = Ipv4Addr(10, 1, 0, 1);
  key.ip_dst = Ipv4Addr(10, 1, 0, 2);
  key.src_port = id;  // unique tag: frame bytes identify the packet
  key.dst_port = 7;
  return make_udp(key, size);
}

class SchedulerEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerEquivalence, FcfsOverPerPortQueuesMatchesTheSharedFifo) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);

  const int ports = 2 + static_cast<int>(rng.below(5));
  const std::size_t capacity = 4 + rng.below(44);  // tight: drops happen
  const std::size_t burst = std::vector<std::size_t>{1, 2, 3, 8, 33}[rng.below(5)];

  Engine engine;
  SharedFifoRef ref(engine, capacity, burst);
  SchedulerProbe probe(engine, capacity, burst);  // default scheduler: FCFS

  // Random arrival process: jittered times (often simultaneous — ties
  // must break identically), random ports, random sizes.
  SimNanos at = 0;
  for (std::uint16_t id = 0; id < 400; ++id) {
    if (!rng.chance(0.5)) at += rng.below(150);  // denser than service: drops happen
    const int in_port = static_cast<int>(rng.below(static_cast<std::uint64_t>(ports)));
    const std::size_t size = 64 + rng.below(1400);
    engine.schedule_at(at, [&ref, &probe, id, size, in_port] {
      ref.handle(in_port, tagged_packet(id, size));
      probe.handle(in_port, tagged_packet(id, size));
    });
  }
  engine.run();

  ASSERT_EQ(probe.log.size(), ref.log.size()) << "seed " << seed;
  for (std::size_t i = 0; i < ref.log.size(); ++i)
    ASSERT_EQ(probe.log[i], ref.log[i]) << "seed " << seed << " service " << i;
  EXPECT_EQ(probe.queue_drops(), ref.drops) << "seed " << seed;
  EXPECT_EQ(probe.busy_ns(), ref.busy_ns) << "seed " << seed;
  EXPECT_EQ(probe.bursts_served(), ref.bursts) << "seed " << seed;
  EXPECT_EQ(probe.queue_depth(), 0u);
  // Per-port drop attribution must add up to the shared total.
  std::uint64_t per_port = 0;
  for (std::size_t q = 0; q < probe.rx_queue_count(); ++q) per_port += probe.rx_queue(q).drops();
  EXPECT_EQ(per_port, probe.queue_drops()) << "seed " << seed;
  // The workload must actually stress the queue for this to mean much.
  EXPECT_GT(ref.drops, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---- Part 2: one active port => every scheduler is FCFS --------------

struct Script {
  struct Event {
    SimNanos at;
    bool flow_mod;
    // packet
    int dst;
    std::size_t size;
    // flow mod
    openflow::FlowModMsg mod;
  };
  std::vector<Event> events;
};

/// Random single-source traffic with flow-mod interleavings: rules for
/// the destinations come, go, and get re-pointed while packets are in
/// flight and queued.
Script make_single_port_script(std::uint64_t seed, int hosts) {
  util::Rng rng(seed * 17 + 3);
  Script script;
  SimNanos at = 5'000;
  for (int step = 0; step < 500; ++step) {
    Script::Event event{};
    event.at = at;
    if (rng.chance(0.08)) {
      event.flow_mod = true;
      const int dst = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(hosts - 1)));
      event.mod.table_id = 0;
      if (rng.chance(0.25)) {
        event.mod.command = openflow::FlowModMsg::Command::kDelete;
        event.mod.match.eth_dst(bench::host_mac(dst));
      } else {
        event.mod.command = openflow::FlowModMsg::Command::kAdd;
        event.mod.priority = static_cast<std::uint16_t>(11 + rng.below(4));
        event.mod.match.eth_dst(bench::host_mac(dst));
        event.mod.instructions = openflow::apply({openflow::output(
            static_cast<std::uint32_t>(1 + rng.below(static_cast<std::uint64_t>(hosts))))});
      }
    } else {
      event.flow_mod = false;
      event.dst = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(hosts - 1)));
      event.size = 64 + rng.below(1200);
      // Back-to-back clumps so the switch queue actually builds up.
      if (rng.chance(0.5)) at += rng.below(2'000);
    }
    script.events.push_back(std::move(event));
    at += rng.below(200);
  }
  return script;
}

struct SinglePortRun {
  std::vector<std::uint64_t> host_rx;
  std::uint64_t pipeline_runs, packets_out, drops_no_match, queue_drops;
  std::uint64_t cache_hits, cache_misses;
};

SinglePortRun run_single_port(const Script& script, sim::SchedulerSpec scheduler) {
  RigOptions options;
  options.host_count = 4;
  options.burst_size = 8;
  options.scheduler = scheduler;
  options.port_queue_capacity = 16;  // tight per-port bound: drops happen
  NativeRig rig(options);

  for (const Script::Event& event : script.events) {
    if (event.flow_mod) {
      rig.network.engine().schedule_at(event.at, [&rig, &event] {
        (void)rig.datapath->install(event.mod);
      });
    } else {
      rig.network.engine().schedule_at(event.at, [&rig, &event] {
        FlowKey key;
        key.eth_src = rig.hosts[0]->mac();
        key.eth_dst = bench::host_mac(event.dst);
        key.ip_src = rig.hosts[0]->ip();
        key.ip_dst = bench::host_ip(event.dst);
        key.dst_port = 9;
        rig.hosts[0]->send(make_udp(key, event.size));
      });
    }
  }
  rig.network.run();

  SinglePortRun run{};
  for (sim::Host* host : rig.hosts) run.host_rx.push_back(host->counters().rx_udp);
  const auto& counters = rig.datapath->counters();
  run.pipeline_runs = counters.pipeline_runs;
  run.packets_out = counters.packets_out;
  run.drops_no_match = counters.drops_no_match;
  run.queue_drops = rig.datapath->queue_drops();
  run.cache_hits = counters.cache_hits;
  run.cache_misses = counters.cache_misses;
  return run;
}

class SinglePortSchedulers : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SinglePortSchedulers, AllSchedulersDegenerateToFcfsOnOneActivePort) {
  const std::uint64_t seed = GetParam();
  const Script script = make_single_port_script(seed, 4);

  const SinglePortRun fcfs = run_single_port(script, {sim::SchedulerKind::kFcfs});
  const SinglePortRun rr = run_single_port(script, {sim::SchedulerKind::kRoundRobin});
  const SinglePortRun drr = run_single_port(script, {sim::SchedulerKind::kDrr});

  for (const SinglePortRun* other : {&rr, &drr}) {
    EXPECT_EQ(other->host_rx, fcfs.host_rx) << "seed " << seed;
    EXPECT_EQ(other->pipeline_runs, fcfs.pipeline_runs) << "seed " << seed;
    EXPECT_EQ(other->packets_out, fcfs.packets_out) << "seed " << seed;
    EXPECT_EQ(other->drops_no_match, fcfs.drops_no_match) << "seed " << seed;
    EXPECT_EQ(other->queue_drops, fcfs.queue_drops) << "seed " << seed;
    EXPECT_EQ(other->cache_hits, fcfs.cache_hits) << "seed " << seed;
    EXPECT_EQ(other->cache_misses, fcfs.cache_misses) << "seed " << seed;
  }
  // The script must exercise the datapath, flow-mod churn included.
  EXPECT_GT(fcfs.pipeline_runs, 400u) << "seed " << seed;
  EXPECT_GT(fcfs.cache_hits, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SinglePortSchedulers, ::testing::Values(2, 7, 11, 23, 42));

// ---- Part 3: schedulers reorder service, never what is delivered -----

TEST(SchedulerMultiset, ReorderingNeverChangesWhatIsDeliveredOrCounted) {
  // Multi-port waves with flow-mods only in fully-drained gaps: the
  // scheduler choice may permute service order inside a wave, but the
  // delivered multiset, match counts and per-entry stats must agree.
  auto run = [](sim::SchedulerSpec scheduler) {
    RigOptions options;
    options.host_count = 4;
    options.burst_size = 16;
    options.scheduler = scheduler;
    NativeRig rig(options);

    SimNanos at = 10'000;
    util::Rng rng(99);
    for (int wave = 0; wave < 5; ++wave) {
      // Re-point one destination's rule between waves (queues empty).
      openflow::FlowModMsg mod;
      mod.table_id = 0;
      mod.priority = 20;
      mod.match.eth_dst(bench::host_mac(1));
      mod.instructions = openflow::apply(
          {openflow::output(static_cast<std::uint32_t>(wave % 2 == 0 ? 2 : 4))});
      rig.network.engine().schedule_at(at, [&rig, mod] { (void)rig.datapath->install(mod); });
      at += 1'000;
      // A wave: every host streams to its ring neighbour, paced within
      // capacity so nothing drops.
      for (int i = 0; i < 4; ++i)
        for (int k = 0; k < 50; ++k) {
          const SimNanos send_at = at + k * 400 + static_cast<SimNanos>(rng.below(50));
          rig.network.engine().schedule_at(send_at, [&rig, i] {
            FlowKey key;
            key.eth_src = rig.hosts[static_cast<std::size_t>(i)]->mac();
            key.eth_dst = bench::host_mac((i + 1) % 4);
            key.ip_src = rig.hosts[static_cast<std::size_t>(i)]->ip();
            key.ip_dst = bench::host_ip((i + 1) % 4);
            key.dst_port = 9;
            rig.hosts[static_cast<std::size_t>(i)]->send(make_udp(key, 200));
          });
        }
      at += 50 * 400 + 2'000'000;  // long gap: everything drains
    }
    rig.network.run();

    struct Result {
      std::vector<std::uint64_t> host_rx;
      std::uint64_t packets_out, queue_drops;
      std::vector<std::pair<std::uint64_t, std::uint64_t>> entry_stats;
    } result;
    for (sim::Host* host : rig.hosts) result.host_rx.push_back(host->counters().rx_udp);
    result.packets_out = rig.datapath->counters().packets_out;
    result.queue_drops = rig.datapath->queue_drops();
    for (const openflow::FlowEntry* entry : rig.datapath->pipeline().table(0).entries())
      result.entry_stats.emplace_back(entry->packet_count, entry->byte_count);
    return std::make_tuple(result.host_rx, result.packets_out, result.queue_drops,
                           result.entry_stats);
  };

  const auto fcfs = run({sim::SchedulerKind::kFcfs});
  const auto rr = run({sim::SchedulerKind::kRoundRobin});
  const auto drr = run({sim::SchedulerKind::kDrr, 1, 512});
  EXPECT_EQ(rr, fcfs);
  EXPECT_EQ(drr, fcfs);
  EXPECT_EQ(std::get<2>(fcfs), 0u);  // paced within capacity: no drops anywhere
}

}  // namespace
}  // namespace harmless

// Chaos properties of the fault-injection layer.
//
// (a) Equivalence: a fabric with a registered FaultInjector and an
//     EMPTY FaultPlan is bit-identical to the same fabric without the
//     injector — registration alone must perturb nothing (the fault-
//     free Tables 1-7 guarantee).
// (b) Conservation under chaos: for seeded random fault schedules
//     (control partitions, controller crash+restart, access-link
//     flaps, switch reboots) no host ever sees the same packet id
//     twice, every channel message is attributed (delivered or counted
//     in exactly one drop bucket), every disconnect reconnects and
//     resyncs once the plan heals, and the same seed replays to the
//     same digest.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "bench/common.hpp"
#include "controller/apps/static_flows.hpp"
#include "controller/controller.hpp"
#include "net/build.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"
#include "util/status.hpp"

namespace {

using namespace harmless;
using softswitch::FailoverSpec;
using softswitch::SoftSwitch;

constexpr sim::SimNanos kMs = 1'000'000;

// FNV-1a over a stream of u64 observations.
struct Digest {
  std::uint64_t value = 14695981039346656037ULL;
  void fold(std::uint64_t x) {
    for (int byte = 0; byte < 8; ++byte) {
      value ^= (x >> (byte * 8)) & 0xff;
      value *= 1099511628211ULL;
    }
  }
};

// ---- (a) empty-plan equivalence --------------------------------------

std::uint64_t run_harmless_workload(bool with_injector) {
  bench::RigOptions options;
  options.host_count = 4;
  bench::HarmlessRig rig(options);

  std::unique_ptr<sim::FaultInjector> injector;
  if (with_injector) {
    injector = std::make_unique<sim::FaultInjector>(rig.network.engine());
    rig.fabric->register_faults(*injector);
    injector->arm(sim::FaultPlan{});  // empty: arms nothing
  }

  for (int i = 0; i < options.host_count; ++i)
    rig.stream(i, (i + 1) % options.host_count, 400, 128, 2'000);
  rig.network.run();

  Digest digest;
  digest.fold(static_cast<std::uint64_t>(rig.network.now()));
  digest.fold(rig.network.engine().events_dispatched());
  for (const sim::Host* host : rig.hosts) {
    digest.fold(host->counters().rx_total);
    digest.fold(host->counters().rx_udp);
  }
  for (const SoftSwitch* sw : {&rig.fabric->ss1(), &rig.fabric->ss2()}) {
    const auto& counters = sw->counters();
    digest.fold(counters.pipeline_runs);
    digest.fold(counters.packets_out);
    digest.fold(counters.cache_hits);
    digest.fold(counters.cache_misses);
    digest.fold(counters.drops_no_match);
  }
  digest.fold(rig.device->counters().forwarded);
  digest.fold(rig.device->counters().flooded);
  const auto& to_ctrl = rig.fabric->control_channel().to_controller();
  digest.fold(to_ctrl.sent);
  digest.fold(to_ctrl.delivered + to_ctrl.dropped_down + to_ctrl.dropped_loss +
              to_ctrl.dropped_no_handler);
  if (with_injector) {
    EXPECT_EQ(injector->stats().armed, 0u);
    EXPECT_EQ(injector->stats().fired, 0u);
  }
  return digest.value;
}

TEST(FaultEquivalence, EmptyPlanIsByteIdenticalToNoInjector) {
  EXPECT_EQ(run_harmless_workload(false), run_harmless_workload(true));
}

// ---- (b) conservation under seeded chaos -----------------------------

net::MacAddr host_mac(int index) {
  return net::MacAddr::from_u64(0x020000000001ULL + static_cast<std::uint64_t>(index));
}
net::Ipv4Addr host_ip(int index) {
  return net::Ipv4Addr(0x0a000001u + static_cast<std::uint32_t>(index));
}

struct ChaosOutcome {
  std::uint64_t digest = 0;
  bool duplicate_delivery = false;
};

ChaosOutcome run_chaos(std::uint64_t seed) {
  const int host_count = 4;
  sim::Network network;
  auto& sw = network.add_node<SoftSwitch>("sw", 0xC0, static_cast<std::size_t>(host_count),
                                          /*table_count=*/1);
  std::vector<sim::Host*> hosts;
  std::vector<std::unordered_set<std::uint64_t>> seen(static_cast<std::size_t>(host_count));
  ChaosOutcome outcome;
  for (int i = 0; i < host_count; ++i) {
    sim::Host& host = network.add_host("h" + std::to_string(i), host_mac(i), host_ip(i));
    network.connect(host, 0, sw, static_cast<std::size_t>(i), sim::LinkSpec::gbps(10));
    host.set_on_receive([&outcome, &seen, i](const net::Packet& packet,
                                             const net::ParsedPacket&) {
      if (!seen[static_cast<std::size_t>(i)].insert(packet.id()).second)
        outcome.duplicate_delivery = true;
    });
    hosts.push_back(&host);
  }

  openflow::ControlChannel channel(network.engine());
  sw.attach_channel(channel);
  FailoverSpec spec;
  spec.mode = (seed % 2 == 0) ? FailoverSpec::Mode::kFailSecure
                              : FailoverSpec::Mode::kFailStandalone;
  spec.echo_interval_ns = 500'000;
  spec.seed = seed;
  sw.set_failover(spec);

  controller::Controller ctrl;
  auto& app = ctrl.add_app<controller::StaticFlowApp>();
  std::size_t rule_count = 0;
  for (int i = 0; i < host_count; ++i) {
    openflow::FlowModMsg mod;
    mod.table_id = 0;
    mod.priority = 10;
    mod.match.eth_dst(host_mac(i));
    mod.instructions = openflow::apply({openflow::output(static_cast<std::uint32_t>(i + 1))});
    app.flow(mod);
    ++rule_count;
  }
  {
    openflow::FlowModMsg miss;
    miss.table_id = 0;
    miss.priority = 0;
    miss.instructions = openflow::apply({openflow::to_controller()});
    app.flow(miss);
    ++rule_count;
  }
  ctrl.connect(channel, "sw");

  sim::FaultInjector injector(network.engine());
  injector.register_point("control", channel);
  injector.register_point("ctrl", ctrl);
  injector.register_point("sw", sw);
  for (sim::Channel* link : network.find_channels("h0"))
    injector.register_link("link0", *link);

  sim::FaultPlan plan;
  plan.seed = seed;
  plan.random_outages("control", 2, 5 * kMs, 40 * kMs, 2 * kMs)
      .random_outages("link0", 1, 10 * kMs, 30 * kMs, 1 * kMs)
      .random_crashes("ctrl", 1, 45 * kMs, 60 * kMs, 3 * kMs);
  if (seed % 3 == 0) plan.random_crashes("sw", 1, 65 * kMs, 78 * kMs, 2 * kMs);
  injector.arm(plan);

  // Traffic spanning the whole chaos window.
  for (int i = 0; i < host_count; ++i)
    hosts[static_cast<std::size_t>(i)]->send_udp_stream(
        hosts[static_cast<std::size_t>((i + 1) % host_count)]->mac(),
        hosts[static_cast<std::size_t>((i + 1) % host_count)]->ip(), 1200, 64, 50'000);

  // All fault windows close by ~80 ms; the last 20 ms are quiet time
  // for detection + capped backoff + resync to finish.
  network.run_until(100 * kMs);

  // Injector fired everything it armed.
  EXPECT_EQ(injector.stats().fired, injector.stats().armed);

  // Faults all healed; the control session recovered.
  EXPECT_TRUE(channel.is_up()) << "seed " << seed;
  EXPECT_FALSE(ctrl.crashed()) << "seed " << seed;
  EXPECT_FALSE(sw.restarting()) << "seed " << seed;
  EXPECT_TRUE(sw.control_connected()) << "seed " << seed;
  const auto& stats = sw.failover_stats();
  EXPECT_EQ(stats.disconnects, stats.reconnects) << "seed " << seed;
  // Every reconnect is resynced unless a new fault interrupts it —
  // in which case the NEXT reconnect resyncs; so resyncs never exceeds
  // reconnects, at least one lands if any reconnect did, and the final
  // reconnection always completed its resync.
  EXPECT_LE(stats.resyncs, stats.reconnects) << "seed " << seed;
  if (stats.reconnects > 0) {
    EXPECT_GE(stats.resyncs, 1u) << "seed " << seed;
    EXPECT_GE(stats.last_resync_at, stats.last_reconnect_at) << "seed " << seed;
  }
  // The programmed state survived or was re-installed.
  EXPECT_EQ(sw.pipeline().table(0).entries().size(), rule_count) << "seed " << seed;

  // Channel conservation: every message delivered or attributed to
  // exactly one drop bucket, modulo the handful still in flight at the
  // deadline (probes sent within one RTT of it).
  for (const auto* direction : {&channel.to_controller(), &channel.to_switch()}) {
    const std::uint64_t accounted = direction->delivered + direction->dropped_down +
                                    direction->dropped_loss + direction->dropped_no_handler;
    EXPECT_GE(direction->sent, accounted) << "seed " << seed;
    EXPECT_LE(direction->sent - accounted, 4u) << "seed " << seed;
  }

  Digest digest;
  digest.fold(network.engine().events_dispatched());
  for (const sim::Host* host : hosts) digest.fold(host->counters().rx_total);
  digest.fold(stats.disconnects);
  digest.fold(stats.reconnects);
  digest.fold(stats.resyncs);
  digest.fold(stats.standalone_packets);
  digest.fold(stats.packet_ins_dropped);
  digest.fold(channel.to_controller().sent);
  digest.fold(channel.to_switch().sent);
  outcome.digest = digest.value;
  return outcome;
}

TEST(FaultChaos, ConservationInvariantsHoldAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ChaosOutcome outcome = run_chaos(seed);
    EXPECT_FALSE(outcome.duplicate_delivery) << "seed " << seed;
  }
}

TEST(FaultChaos, SameSeedReplaysBitIdentically) {
  const ChaosOutcome first = run_chaos(7);
  const ChaosOutcome again = run_chaos(7);
  EXPECT_FALSE(first.duplicate_delivery);
  EXPECT_EQ(first.digest, again.digest);
}

// ---- derived fault-target names (auto-registration) ------------------

TEST(FaultEquivalence, DerivedTargetNamesCoverTheFabric) {
  bench::RigOptions options;
  options.host_count = 4;
  bench::HarmlessRig rig(options);
  sim::FaultInjector injector(rig.network.engine());
  rig.fabric->register_faults(injector, rig.network);

  // Legacy aliases stay registered — existing plans keep working.
  for (const char* name : {"trunk", "control", "ss1", "ss2"})
    EXPECT_TRUE(injector.has_target(name)) << name;
  // Derived names: every component self-registers.
  for (const char* name : {"switch:SS_1", "switch:SS_2", "control:SS_2", "trunk:leg0"})
    EXPECT_TRUE(injector.has_target(name)) << name;
  // The whole-network surface: one "link:<label>" per channel.
  const std::vector<std::string> names = injector.target_names();
  std::size_t links = 0;
  for (const std::string& name : names)
    if (name.rfind("link:", 0) == 0) ++links;
  EXPECT_EQ(links, rig.network.channels().size());
  // target_names is sorted and de-duplicated enough to drive schedules.
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(FaultEquivalence, DuplicateRegistrationFailsLoudly) {
  sim::Network network;
  sim::Host& h0 = network.add_host("h0", host_mac(0), host_ip(0));
  sim::Host& h1 = network.add_host("h1", host_mac(1), host_ip(1));
  network.connect(h0, 0, h1, 0, sim::LinkSpec::gbps(1));
  sim::FaultInjector injector(network.engine());
  sim::FaultPoint point;
  sim::Channel* link = network.find_channels("h0").front();

  injector.register_point("ctrl", point);
  injector.register_link("wire", *link);
  // Same object under the same name again: silent shadowing would make
  // one plan event fire the fault twice — refuse instead.
  EXPECT_THROW(injector.register_point("ctrl", point), util::ConfigError);
  EXPECT_THROW(injector.register_link("wire", *link), util::ConfigError);
  // Cross-type shadowing (a link named like a point or vice versa)
  // would make target_names ambiguous — also refused.
  EXPECT_THROW(injector.register_link("ctrl", *link), util::ConfigError);
  EXPECT_THROW(injector.register_point("wire", point), util::ConfigError);
  // Fan-out under one name with distinct objects stays legal (e.g.
  // both directions of a duplex pair as one target).
  sim::FaultPoint second;
  injector.register_point("ctrl", second);
  EXPECT_TRUE(injector.has_target("ctrl"));
}

// ---- (c) chaos with conntrack in the pipeline ------------------------

/// Stateful-firewall rules (same scheme as the failover tests): only
/// tracked connections pass h0 <-> h1, everything else drops. Under
/// chaos this makes the conntrack table load-bearing — lose it and the
/// established flow's segments go INVALID.
std::vector<openflow::FlowModMsg> ct_firewall_rules() {
  std::vector<openflow::FlowModMsg> rules;
  for (int dir = 0; dir < 2; ++dir) {
    openflow::FlowModMsg est;
    est.table_id = 0;
    est.priority = 30;
    est.match.in_port(static_cast<std::uint32_t>(dir + 1)).ct_established();
    est.instructions =
        openflow::apply({openflow::ct_commit(), openflow::output(dir == 0 ? 2u : 1u)});
    rules.push_back(est);
  }
  openflow::FlowModMsg open;
  open.table_id = 0;
  open.priority = 20;
  open.match.in_port(1).ct_new();
  open.instructions = openflow::apply({openflow::ct_commit(), openflow::output(2)});
  rules.push_back(open);
  openflow::FlowModMsg drop;
  drop.table_id = 0;
  drop.priority = 0;
  rules.push_back(drop);
  return rules;
}

struct CtChaosRig {
  sim::Network network;
  SoftSwitch* sw = nullptr;
  sim::Host* a = nullptr;
  sim::Host* b = nullptr;
  std::unique_ptr<openflow::ControlChannel> channel;
  controller::Controller ctrl;
  net::FlowKey flow;        // a -> b
  net::FlowKey reply_flow;  // b -> a
  std::size_t rule_count = 0;
  bool duplicate_delivery = false;
  std::unordered_set<std::uint64_t> seen_a;
  std::unordered_set<std::uint64_t> seen_b;

  explicit CtChaosRig(std::uint64_t seed, sim::SimNanos checkpoint_interval) {
    sw = &network.add_node<SoftSwitch>("fw", 0xC7, 2, /*table_count=*/1);
    sw->enable_conntrack(openflow::CtConfig{});
    a = &network.add_host("a", host_mac(0), host_ip(0));
    b = &network.add_host("b", host_mac(1), host_ip(1));
    network.connect(*a, 0, *sw, 0, sim::LinkSpec::gbps(10));
    network.connect(*b, 0, *sw, 1, sim::LinkSpec::gbps(10));
    a->set_on_receive([this](const net::Packet& packet, const net::ParsedPacket&) {
      if (!seen_a.insert(packet.id()).second) duplicate_delivery = true;
    });
    b->set_on_receive([this](const net::Packet& packet, const net::ParsedPacket&) {
      if (!seen_b.insert(packet.id()).second) duplicate_delivery = true;
    });
    channel = std::make_unique<openflow::ControlChannel>(network.engine());
    sw->attach_channel(*channel);
    FailoverSpec spec;
    spec.mode = FailoverSpec::Mode::kFailSecure;
    spec.echo_interval_ns = 500'000;
    spec.echo_miss_threshold = 3;
    spec.seed = seed;
    spec.checkpoint_interval_ns = checkpoint_interval;
    sw->set_failover(spec);
    auto& app = ctrl.add_app<controller::StaticFlowApp>();
    for (const openflow::FlowModMsg& rule : ct_firewall_rules()) {
      app.flow(rule);
      ++rule_count;
    }
    ctrl.connect(*channel, "fw");
    flow = net::FlowKey{a->mac(), b->mac(), a->ip(), b->ip(), 40000, 80};
    reply_flow = net::FlowKey{b->mac(), a->mac(), b->ip(), a->ip(), 80, 40000};
  }

  /// Handshake at 2 ms, then a paced ACK stream (with periodic reverse
  /// ACKs) spanning [3 ms, until) — traffic is in flight through every
  /// fault window.
  void schedule_traffic(sim::SimNanos until) {
    sim::Engine& engine = network.engine();
    engine.schedule_at(2 * kMs, [this] { a->send(net::make_tcp(flow, net::kTcpSyn)); });
    engine.schedule_at(2 * kMs + 200'000,
                       [this] { b->send(net::make_tcp(reply_flow, net::kTcpSyn | net::kTcpAck)); });
    for (sim::SimNanos at = 3 * kMs; at < until; at += 100'000)
      engine.schedule_at(at, [this] { a->send(net::make_tcp(flow, net::kTcpAck)); });
    for (sim::SimNanos at = 3 * kMs + 50'000; at < until; at += kMs)
      engine.schedule_at(at, [this] { b->send(net::make_tcp(reply_flow, net::kTcpAck)); });
  }

  [[nodiscard]] std::uint64_t digest() {
    Digest digest;
    digest.fold(network.engine().events_dispatched());
    digest.fold(a->counters().rx_total);
    digest.fold(a->counters().rx_tcp);
    digest.fold(b->counters().rx_total);
    digest.fold(b->counters().rx_tcp);
    const auto& failover = sw->failover_stats();
    digest.fold(failover.disconnects);
    digest.fold(failover.reconnects);
    digest.fold(failover.resyncs);
    digest.fold(failover.crashes);
    digest.fold(failover.checkpoints);
    digest.fold(failover.ct_restored);
    digest.fold(failover.ct_restore_dropped);
    digest.fold(failover.warm_resyncs);
    const auto& ct = sw->pipeline().conntrack(0).stats();
    digest.fold(ct.created);
    digest.fold(ct.refreshed);
    digest.fold(ct.expired);
    digest.fold(ct.invalid);
    digest.fold(ct.restored);
    digest.fold(channel->to_controller().sent);
    digest.fold(channel->to_switch().sent);
    return digest.value;
  }
};

ChaosOutcome run_ct_chaos(std::uint64_t seed, sim::SimNanos checkpoint_interval) {
  CtChaosRig rig(seed, checkpoint_interval);

  sim::FaultInjector injector(rig.network.engine());
  injector.register_point("control", *rig.channel);
  injector.register_point("ctrl", rig.ctrl);
  injector.register_point("sw", *rig.sw);

  sim::FaultPlan plan;
  plan.seed = seed;
  plan.random_outages("control", 2, 5 * kMs, 40 * kMs, 2 * kMs)
      .random_crashes("sw", 2, 20 * kMs, 70 * kMs, 2 * kMs)
      .random_crashes("ctrl", 1, 45 * kMs, 60 * kMs, 3 * kMs);
  injector.arm(plan);

  rig.schedule_traffic(80 * kMs);
  rig.network.run_until(100 * kMs);

  EXPECT_EQ(injector.stats().fired, injector.stats().armed);
  EXPECT_FALSE(rig.sw->restarting()) << "seed " << seed;
  EXPECT_TRUE(rig.sw->control_connected()) << "seed " << seed;
  EXPECT_EQ(rig.sw->pipeline().table(0).entries().size(), rig.rule_count) << "seed " << seed;
  if (checkpoint_interval > 0) {
    // The handshake commits by ~2.2 ms and the first crash window
    // opens at 20 ms: at least one checkpoint must have landed.
    EXPECT_GE(rig.sw->failover_stats().checkpoints, 1u) << "seed " << seed;
  }

  ChaosOutcome outcome;
  outcome.duplicate_delivery = rig.duplicate_delivery;
  outcome.digest = rig.digest();
  return outcome;
}

TEST(FaultChaos, ConntrackConservationInvariantsHoldAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const ChaosOutcome outcome = run_ct_chaos(seed, kMs);
    EXPECT_FALSE(outcome.duplicate_delivery) << "seed " << seed;
  }
}

TEST(FaultChaos, ConntrackSameSeedReplaysBitIdentically) {
  // With ct (and its checkpoint timer) in the pipeline the replay
  // guarantee must hold bit-for-bit, checkpointing on and off.
  for (const sim::SimNanos interval : {sim::SimNanos{0}, kMs}) {
    const ChaosOutcome first = run_ct_chaos(7, interval);
    const ChaosOutcome again = run_ct_chaos(7, interval);
    EXPECT_FALSE(first.duplicate_delivery);
    EXPECT_EQ(first.digest, again.digest) << "interval " << interval;
  }
}

TEST(FaultChaos, DoubleFailureInsideResyncWindowConverges) {
  // A second crash landing while the first restart's reconnect/resync
  // is still in flight (capped backoff ~1-8 ms + handshake + install)
  // must still converge: connected, rules reinstalled, and the
  // checkpointed connection survives BOTH restarts.
  for (const sim::SimNanos offset :
       {sim::SimNanos{100'000}, sim::SimNanos{300'000}, 1 * kMs, 2 * kMs, 5 * kMs}) {
    CtChaosRig rig(11, kMs);
    sim::FaultInjector injector(rig.network.engine());
    injector.register_point("sw", *rig.sw);
    sim::FaultPlan plan;
    plan.crash("sw", 10 * kMs, 2 * kMs);           // restart at 12 ms
    plan.crash("sw", 12 * kMs + offset, 2 * kMs);  // inside the resync window
    injector.arm(plan);

    rig.schedule_traffic(30 * kMs);
    rig.network.run_until(45 * kMs);

    EXPECT_FALSE(rig.duplicate_delivery) << "offset " << offset;
    EXPECT_FALSE(rig.sw->restarting()) << "offset " << offset;
    EXPECT_TRUE(rig.sw->control_connected()) << "offset " << offset;
    EXPECT_EQ(rig.sw->pipeline().table(0).entries().size(), rig.rule_count)
        << "offset " << offset;
    EXPECT_EQ(rig.sw->failover_stats().crashes, 2u) << "offset " << offset;
    EXPECT_GE(rig.sw->failover_stats().ct_restored, 1u) << "offset " << offset;

    // The established flow still forwards: send 5 post-heal ACKs.
    const std::uint64_t before = rig.b->counters().rx_tcp;
    for (int i = 0; i < 5; ++i) {
      rig.network.engine().schedule_after(100'000, [&rig] {
        rig.a->send(net::make_tcp(rig.flow, net::kTcpAck));
      });
      rig.network.run_until(rig.network.now() + 200'000);
    }
    EXPECT_EQ(rig.b->counters().rx_tcp, before + 5) << "offset " << offset;
  }
}

// ---- (d) split-brain safety under chaos (PR 10) ----------------------

/// The PR-10 safety property: whatever the partition/crash schedule —
/// replication cut in either direction, witness links cut, active
/// crashed, even the witness itself crashed — the lease quorum plus
/// fail-closed fencing admit AT MOST ONE unfenced active at any
/// simulated instant, and fencing epochs never move backwards.
TEST(FaultChaos, AtMostOneUnfencedActiveUnderAnySchedule) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Network network;
    auto& act = network.add_node<SoftSwitch>("act", 0xA1, 2, /*table_count=*/1);
    auto& stb = network.add_node<SoftSwitch>("stb", 0xA2, 2, /*table_count=*/1);
    act.enable_conntrack(openflow::CtConfig{});
    stb.enable_conntrack(openflow::CtConfig{});
    softswitch::ReplicationChannel ab(network.engine());  // act -> stb
    softswitch::ReplicationChannel ba(network.engine());  // stb -> act
    sim::Witness witness;
    sim::WitnessLink wl_act(network.engine(), witness, 0xA1);
    sim::WitnessLink wl_stb(network.engine(), witness, 0xA2);
    act.set_ha_witness(wl_act);
    stb.set_ha_witness(wl_stb);
    act.enable_ha_active(ab, &ba);
    stb.enable_ha_standby(ab, &ba);

    sim::FaultInjector injector(network.engine());
    injector.register_point("repl:ab", ab);
    injector.register_point("repl:ba", ba);
    injector.register_point("wit:act", wl_act);
    injector.register_point("wit:stb", wl_stb);
    injector.register_point("act", act);
    injector.register_point("witness", witness);

    sim::FaultPlan plan;
    plan.seed = seed;
    plan.random_outages("repl:ab", 2, 5 * kMs, 60 * kMs, 3 * kMs)
        .random_outages("repl:ba", 1, 5 * kMs, 60 * kMs, 3 * kMs)
        .random_outages("wit:act", 1, 10 * kMs, 55 * kMs, 3 * kMs)
        .random_outages("wit:stb", 1, 10 * kMs, 55 * kMs, 3 * kMs)
        .random_crashes("act", 1, 20 * kMs, 50 * kMs, 4 * kMs);
    if (seed % 2 == 0) plan.random_crashes("witness", 1, 30 * kMs, 45 * kMs, 2 * kMs);
    injector.arm(plan);

    // Dense probe: sample the global invariant every 50 us across the
    // whole chaos window and well past the last heal.
    std::uint64_t double_active_samples = 0;
    std::uint64_t epoch_regressions = 0;
    std::uint64_t epoch_overruns = 0;  // box epoch ahead of the ledger
    std::uint64_t last_epoch_act = 0;
    std::uint64_t last_epoch_stb = 0;
    for (sim::SimNanos at = 0; at <= 90 * kMs; at += 50'000) {
      network.engine().schedule_at(at, [&] {
        if (act.ha_unfenced_active() && stb.ha_unfenced_active()) ++double_active_samples;
        if (act.ha_epoch() < last_epoch_act || stb.ha_epoch() < last_epoch_stb)
          ++epoch_regressions;
        if (act.ha_epoch() > witness.epoch() || stb.ha_epoch() > witness.epoch())
          ++epoch_overruns;
        last_epoch_act = act.ha_epoch();
        last_epoch_stb = stb.ha_epoch();
      });
    }

    network.run_until(100 * kMs);

    EXPECT_EQ(injector.stats().fired, injector.stats().armed) << "seed " << seed;
    EXPECT_EQ(double_active_samples, 0u) << "seed " << seed;
    EXPECT_EQ(epoch_regressions, 0u) << "seed " << seed;
    EXPECT_EQ(epoch_overruns, 0u) << "seed " << seed;
    // Everything healed: whoever ended up active, somebody is serving
    // (or the sole contender is mid-renewal — but never both unfenced).
    EXPECT_FALSE(act.restarting()) << "seed " << seed;
    EXPECT_FALSE(witness.crashed()) << "seed " << seed;
    EXPECT_LE(static_cast<int>(act.ha_unfenced_active()) +
                  static_cast<int>(stb.ha_unfenced_active()),
              1)
        << "seed " << seed;
  }
}

}  // namespace

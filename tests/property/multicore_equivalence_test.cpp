// Sharding-coherence theorems, as differential property tests (the
// scheduler_equivalence_test.cpp approach, one layer up: the cores).
//
// The multi-core datapath — RSS-steered per-core queue subsets, one
// BurstScheduler and one flow-cache shard per core, makespan time
// advance — must be semantically invisible: it may reorder service
// across cores and change every timing number, but never *what* is
// delivered, punted, matched, or counted. Two theorems pin it down:
//
//  1. For ANY RSS map (random core counts, hash steering, random pin
//     maps, adaptive burst on or off) and any drained-between-waves
//     flow-mod interleaving, the sharded switch delivers the identical
//     per-host packet multiset, the identical packet-ins, identical
//     per-rule packet/byte counters, and identical *summed* cache
//     stats (every rule here matches on in_port, so megaflows are
//     port-disjoint and the shard partition is exact).
//
//  2. Under a megaflow capacity storm with a balanced pin map and
//     per-shard limits of limit/cores, the summed insertion and CLOCK
//     eviction counts equal the single-core cache's — sharding divides
//     the capacity pressure, it does not change it.
//
// Both run green under ASan/UBSan (the CI sanitize job runs all of
// ctest).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "bench/common.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace harmless {
namespace {

using bench::host_ip;
using bench::host_mac;
using bench::NativeRig;
using bench::RigOptions;
using net::FlowKey;
using sim::SimNanos;

constexpr int kHosts = 8;

/// Install (in_port, eth_dst) exact rules for every host pair — every
/// traversal examines in_port, so learned megaflows are port-specific
/// and the per-core shard partition of the cache is exact (stats sums
/// must then match the single-core cache bit for bit).
void install_port_l2(NativeRig& rig) {
  for (int src = 0; src < kHosts; ++src) {
    for (int dst = 0; dst < kHosts; ++dst) {
      openflow::FlowModMsg mod;
      mod.table_id = 0;
      mod.priority = 30;
      mod.match.in_port(static_cast<std::uint32_t>(src + 1)).eth_dst(host_mac(dst));
      mod.instructions =
          openflow::apply({openflow::output(static_cast<std::uint32_t>(dst + 1))});
      rig.datapath->install(mod).check();
    }
  }
}

net::Packet flow_packet(int src, int dst, std::uint16_t sport, std::size_t size = 64) {
  FlowKey key;
  key.eth_src = host_mac(src);
  key.eth_dst = host_mac(dst);
  key.ip_src = host_ip(src);
  key.ip_dst = host_ip(dst);
  key.src_port = sport;
  key.dst_port = 443;
  return net::make_udp(key, size);
}

/// Everything the sharding must not change. Timing (busy_ns, service
/// order, latencies) is deliberately absent — that is what it changes.
struct Observed {
  std::vector<std::uint64_t> host_rx;
  std::vector<std::pair<std::uint32_t, net::Bytes>> packet_ins;  // sorted
  std::vector<std::pair<std::string, std::uint64_t>> rule_packets;
  std::vector<std::pair<std::string, std::uint64_t>> rule_bytes;
  std::uint64_t pipeline_runs = 0, packets_out = 0, drops_no_match = 0, queue_drops = 0;
  std::uint64_t counter_hits = 0, counter_misses = 0, invalidations = 0;
  // Summed across shards (== the single-core cache's own stats):
  std::uint64_t hits = 0, microflow_hits = 0, megaflow_hits = 0, misses = 0;
  std::uint64_t insertions = 0, evictions = 0;
  std::size_t megaflows = 0;

  friend bool operator==(const Observed&, const Observed&) = default;
};

struct Wave {
  struct Send {
    int src, dst;
    std::uint16_t sport;
    std::size_t size;
  };
  std::vector<Send> sends;
  /// Re-point one (in_port, dst) rule after the wave drains (0 = none).
  int mod_src = 0, mod_dst = -1, mod_out = 0;
};

std::vector<Wave> make_waves(std::uint64_t seed) {
  util::Rng rng(seed * 1021 + 11);
  std::vector<Wave> waves;
  for (int w = 0; w < 8; ++w) {
    Wave wave;
    const std::size_t sends = 40 + rng.below(80);
    for (std::size_t i = 0; i < sends; ++i) {
      Wave::Send send;
      send.src = static_cast<int>(rng.below(kHosts));
      do {
        send.dst = static_cast<int>(rng.below(kHosts));
      } while (send.dst == send.src);
      // A hot five-tuple share keeps tier-1 busy; the tail churns
      // sports so tier-2 and the slow path stay busy too.
      send.sport = rng.chance(0.6) ? static_cast<std::uint16_t>(10'000 + send.dst)
                                   : static_cast<std::uint16_t>(1024 + rng.below(2000));
      send.size = 64 + rng.below(900);
      wave.sends.push_back(send);
    }
    if (rng.chance(0.7)) {
      wave.mod_src = static_cast<int>(rng.below(kHosts));
      wave.mod_dst = static_cast<int>(rng.below(kHosts));
      // Occasionally re-point to the controller: packet-ins must match
      // too (and punting traversals decline to install megaflows).
      wave.mod_out = rng.chance(0.2) ? -1 : static_cast<int>(1 + rng.below(kHosts));
    }
    waves.push_back(std::move(wave));
  }
  return waves;
}

Observed run_waves(const std::vector<Wave>& waves, const sim::CoreSpec& cores,
                   bool adaptive_burst) {
  RigOptions options;
  options.host_count = kHosts;
  options.burst_size = 8;
  options.cores = cores;
  options.scheduler.adaptive_burst = adaptive_burst;
  NativeRig rig(options);
  install_port_l2(rig);

  Observed observed;
  openflow::ControlChannel channel(rig.network.engine(), 1'000);
  rig.datapath->attach_channel(channel);
  channel.set_controller_handler([&observed](openflow::Message&& message) {
    if (auto* punt = std::get_if<openflow::PacketInMsg>(&message))
      observed.packet_ins.emplace_back(punt->in_port, punt->packet.frame());
  });

  SimNanos at = 10'000;
  for (const Wave& wave : waves) {
    util::Rng jitter(wave.sends.size());
    for (const Wave::Send& send : wave.sends) {
      rig.network.engine().schedule_at(at, [&rig, &send] {
        rig.hosts[static_cast<std::size_t>(send.src)]->send(
            flow_packet(send.src, send.dst, send.sport, send.size));
      });
      // Dense arrivals (queues build up) with occasional gaps.
      if (jitter.chance(0.3)) at += jitter.below(3'000);
    }
    rig.network.run();  // drain completely before mutating tables
    if (wave.mod_dst >= 0) {
      openflow::FlowModMsg mod;
      mod.table_id = 0;
      mod.priority = 30;
      mod.match.in_port(static_cast<std::uint32_t>(wave.mod_src + 1))
          .eth_dst(host_mac(wave.mod_dst));
      mod.instructions = openflow::apply(
          {wave.mod_out < 0 ? openflow::to_controller()
                            : openflow::output(static_cast<std::uint32_t>(wave.mod_out))});
      rig.datapath->install(mod).check();
    }
    at += 200'000;
  }
  rig.network.run();

  for (sim::Host* host : rig.hosts) observed.host_rx.push_back(host->counters().rx_udp);
  std::sort(observed.packet_ins.begin(), observed.packet_ins.end());
  for (const openflow::FlowEntry* entry : rig.datapath->pipeline().table(0).entries()) {
    observed.rule_packets.emplace_back(entry->match.to_string(), entry->packet_count);
    observed.rule_bytes.emplace_back(entry->match.to_string(), entry->byte_count);
  }
  std::sort(observed.rule_packets.begin(), observed.rule_packets.end());
  std::sort(observed.rule_bytes.begin(), observed.rule_bytes.end());

  const auto& counters = rig.datapath->counters();
  observed.pipeline_runs = counters.pipeline_runs;
  observed.packets_out = counters.packets_out;
  observed.drops_no_match = counters.drops_no_match;
  observed.queue_drops = rig.datapath->queue_drops();
  observed.counter_hits = counters.cache_hits;
  observed.counter_misses = counters.cache_misses;
  observed.invalidations = counters.cache_invalidations;
  const openflow::Pipeline& pipeline = rig.datapath->pipeline();
  for (std::size_t shard = 0; shard < pipeline.shard_count(); ++shard) {
    const openflow::FlowCache::Stats& stats = pipeline.cache(shard).stats();
    observed.hits += stats.hits;
    observed.microflow_hits += stats.microflow_hits;
    observed.megaflow_hits += stats.megaflow_hits;
    observed.misses += stats.misses;
    observed.insertions += stats.insertions;
    observed.evictions += stats.evictions;
    observed.megaflows += pipeline.cache(shard).megaflow_count();
  }
  return observed;
}

class MulticoreEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MulticoreEquivalence, ShardedSwitchIsObservationallyIdenticalToSingleCore) {
  const std::uint64_t seed = GetParam();
  const std::vector<Wave> waves = make_waves(seed);
  util::Rng rng(seed * 77 + 5);

  const Observed single = run_waves(waves, sim::CoreSpec{}, /*adaptive_burst=*/false);

  // Random core layouts: counts 2..5, hash or stride steering, and a
  // random pin map a third of the time; adaptive burst joins randomly
  // (it changes budgets and timing, never semantics).
  for (int layout = 0; layout < 3; ++layout) {
    sim::CoreSpec cores;
    cores.cores = 2 + rng.below(4);
    cores.rss = rng.chance(0.5) ? sim::RssPolicy::kHash : sim::RssPolicy::kStride;
    if (rng.chance(0.33)) {
      cores.pin_map.resize(kHosts);
      for (auto& pin : cores.pin_map)
        pin = rng.chance(0.3) ? sim::kCoreUnpinned
                              : static_cast<std::uint32_t>(rng.below(cores.cores));
    }
    const bool adaptive = rng.chance(0.5);
    const Observed sharded = run_waves(waves, cores, adaptive);
    EXPECT_EQ(sharded, single) << "seed " << seed << " cores " << cores.cores << " policy "
                               << sim::to_string(cores.rss) << " adaptive " << adaptive;
  }

  // The workload must actually exercise the machinery being compared.
  EXPECT_GT(single.hits, 100u) << "seed " << seed;
  EXPECT_GT(single.insertions, 10u) << "seed " << seed;
  EXPECT_GT(single.invalidations, 0u) << "seed " << seed;
  EXPECT_EQ(single.queue_drops, 0u) << "seed " << seed;  // ample buffers by design
}

INSTANTIATE_TEST_SUITE_P(Seeds, MulticoreEquivalence, ::testing::Values(3, 9, 17, 29, 41));

// ---- Part 2: capacity storms shard cleanly ---------------------------

/// One switch under a megaflow capacity storm: per-port elephants
/// (every other packet, so CLOCK keeps them resident) over a stream of
/// one-shot mice. Returns the summed (insertions, evictions,
/// hits+misses, delivered) facts.
struct StormRun {
  std::uint64_t insertions = 0, evictions = 0, hits = 0, misses = 0;
  std::uint64_t delivered = 0;
  friend bool operator==(const StormRun&, const StormRun&) = default;
};

StormRun run_storm(std::size_t cores, std::size_t megaflow_limit) {
  RigOptions options;
  options.host_count = kHosts;
  options.burst_size = 8;
  options.cores.cores = cores;
  // Balanced by construction: stride pinning + a port-cycling workload
  // give every shard an identical slice of the storm, so per-shard
  // limits of limit/cores reproduce the single-core pressure exactly.
  options.cores.rss = sim::RssPolicy::kStride;
  NativeRig rig(options);
  install_port_l2(rig);
  openflow::FlowCache::Limits limits;
  limits.max_megaflows = megaflow_limit / (cores == 0 ? 1 : cores);
  limits.max_microflows = 1u << 20;  // tier-1 never flushes: megaflow storm only
  rig.datapath->pipeline().set_cache_limits(limits);

  SimNanos at = 10'000;
  int mouse_id = 0;
  for (int round = 0; round < 120; ++round) {
    for (int port = 0; port < kHosts; ++port) {
      const int dst = (port + 1) % kHosts;
      // Elephant: the port's hot five-tuple — revisited every round,
      // its referenced bit stays ahead of the CLOCK hand.
      rig.network.engine().schedule_at(at, [&rig, port, dst] {
        rig.hosts[static_cast<std::size_t>(port)]->send(
            flow_packet(port, dst, static_cast<std::uint16_t>(10'000 + port)));
      });
      // Mouse: a never-revisited *unknown destination MAC*. Every rule
      // examines eth_dst, so each mouse learns its own (drop) megaflow
      // — one insert, one eventual CLOCK eviction once the tier fills.
      // (Distinct sports would NOT storm the tier: no rule examines
      // L4, so sport churn collapses into one wildcarded megaflow —
      // the cache working as designed.)
      const int mouse = mouse_id++;
      rig.network.engine().schedule_at(at, [&rig, port, mouse] {
        FlowKey key;
        key.eth_src = host_mac(port);
        key.eth_dst = host_mac(100'000 + mouse);
        key.ip_src = host_ip(port);
        key.ip_dst = host_ip(100'000 + mouse);
        key.src_port = 7;
        key.dst_port = 443;
        rig.hosts[static_cast<std::size_t>(port)]->send(net::make_udp(key, 64));
      });
    }
    at += 40'000;
    if (round % 10 == 9) {
      rig.network.run();  // periodic full drain keeps buffers lossless
    }
  }
  rig.network.run();

  StormRun run;
  const openflow::Pipeline& pipeline = rig.datapath->pipeline();
  for (std::size_t shard = 0; shard < pipeline.shard_count(); ++shard) {
    const openflow::FlowCache::Stats& stats = pipeline.cache(shard).stats();
    run.insertions += stats.insertions;
    run.evictions += stats.evictions;
    run.hits += stats.hits;
    run.misses += stats.misses;
  }
  for (sim::Host* host : rig.hosts) run.delivered += host->counters().rx_udp;
  EXPECT_EQ(rig.datapath->queue_drops(), 0u);
  return run;
}

TEST(MulticoreStorm, BalancedShardsReproduceSingleCoreCapacityPressure) {
  constexpr std::size_t kLimit = 64;
  const StormRun single = run_storm(1, kLimit);
  const StormRun sharded = run_storm(4, kLimit);

  EXPECT_EQ(sharded, single);
  // The storm must be real: far more distinct megaflows than capacity,
  // so CLOCK ran hot — and the elephants' hits prove residency paid.
  EXPECT_GT(single.evictions, 500u);
  EXPECT_GT(single.hits, 500u);
}

}  // namespace
}  // namespace harmless

// Property: the calendar-queue Engine dispatches the exact total order
// the historical single-heap engine did. A reference engine (one
// std::priority_queue of closures under the same (time, seq)
// comparator) runs the same randomized self-expanding workload; the
// dispatch log, now() trajectory, events_dispatched and pending counts
// must match event for event — across same-timestamp bursts,
// far-future timers (the overflow path), run_until deadlines, and
// deliberately mis-sized calendar rings.
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event.hpp"

namespace harmless::sim {
namespace {

/// splitmix64: per-event deterministic decisions, so both engines make
/// identical choices without sharing a mutable generator.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The historical engine, reduced to its essence: one binary heap of
/// (time, seq, closure) under the min-(at, seq) comparator.
class ReferenceEngine {
 public:
  [[nodiscard]] SimNanos now() const { return now_; }

  void schedule_at(SimNanos at, std::function<void()> fn) {
    queue_.push(Ev{std::max(at, now_), next_seq_++, std::move(fn)});
  }

  bool step() {
    if (queue_.empty()) return false;
    Ev ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++events_dispatched_;
    ev.fn();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  void run_until(SimNanos deadline) {
    while (!queue_.empty() && queue_.top().at <= deadline) step();
    now_ = std::max(now_, deadline);
  }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_dispatched() const { return events_dispatched_; }

 private:
  struct Ev {
    SimNanos at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  SimNanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_dispatched_ = 0;
};

/// Drives an engine with a self-expanding workload: each dispatched
/// event logs (id, now) and schedules 0-2 children at deltas drawn
/// deterministically from its id — same-timestamp (0), nearly-FIFO,
/// mid-range, and far-future (overflow-sized) jumps.
template <typename EngineT>
struct Driver {
  EngineT& engine;
  std::uint64_t seed;
  int max_depth;
  std::uint64_t next_id = 0;
  std::vector<std::pair<std::uint64_t, SimNanos>> log;

  void spawn(int depth, SimNanos at) {
    const std::uint64_t id = next_id++;
    engine.schedule_at(at, [this, id, depth] { fire(id, depth); });
  }

  void fire(std::uint64_t id, int depth) {
    log.emplace_back(id, engine.now());
    if (depth >= max_depth) return;
    std::uint64_t h = mix(id ^ seed);
    const int children = static_cast<int>(h % 3);
    for (int c = 0; c < children; ++c) {
      h = mix(h);
      SimNanos delta = 0;
      switch (h % 4) {
        case 0: delta = 0; break;  // same-timestamp: FIFO tie-break
        case 1: delta = static_cast<SimNanos>((h >> 8) % 500); break;
        case 2: delta = static_cast<SimNanos>(1'000 + (h >> 8) % 60'000); break;
        case 3: delta = static_cast<SimNanos>(1'000'000 + (h >> 8) % 10'000'000); break;
      }
      spawn(depth + 1, engine.now() + delta);
    }
  }
};

template <typename EngineT>
void seed_initial(Driver<EngineT>& driver, std::uint64_t seed, std::size_t count) {
  std::uint64_t h = mix(seed);
  for (std::size_t i = 0; i < count; ++i) {
    h = mix(h);
    driver.spawn(0, static_cast<SimNanos>(h % 5'000));
  }
}

template <typename EngineT>
Driver<EngineT> drain_workload(EngineT& engine, std::uint64_t seed, std::size_t initial,
                               int max_depth) {
  Driver<EngineT> driver{engine, seed, max_depth};
  seed_initial(driver, seed, initial);
  engine.run();
  return driver;
}

void expect_logs_equal(const std::vector<std::pair<std::uint64_t, SimNanos>>& calendar,
                       const std::vector<std::pair<std::uint64_t, SimNanos>>& reference) {
  ASSERT_EQ(calendar.size(), reference.size());
  for (std::size_t i = 0; i < calendar.size(); ++i) {
    ASSERT_EQ(calendar[i].first, reference[i].first) << "dispatch order diverged at " << i;
    ASSERT_EQ(calendar[i].second, reference[i].second) << "timestamp diverged at " << i;
  }
}

TEST(EngineEquivalence, DrainMatchesReferenceAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Engine calendar;
    ReferenceEngine reference;
    auto got = drain_workload(calendar, seed, 64, 8);
    auto want = drain_workload(reference, seed, 64, 8);
    expect_logs_equal(got.log, want.log);
    EXPECT_EQ(calendar.now(), reference.now());
    EXPECT_EQ(calendar.events_dispatched(), reference.events_dispatched());
    EXPECT_EQ(calendar.pending(), 0u);
  }
}

TEST(EngineEquivalence, SameTimestampBurstsDispatchFifo) {
  // Every initial event lands on one of two instants; children include
  // delta-0 chains. The FIFO tie-break must match the reference heap.
  Engine calendar;
  ReferenceEngine reference;
  Driver<Engine> got{calendar, 99, 6};
  Driver<ReferenceEngine> want{reference, 99, 6};
  for (int i = 0; i < 200; ++i) {
    got.spawn(0, i % 2 == 0 ? 1'000 : 2'000);
    want.spawn(0, i % 2 == 0 ? 1'000 : 2'000);
  }
  calendar.run();
  reference.run();
  expect_logs_equal(got.log, want.log);
  EXPECT_EQ(calendar.events_dispatched(), reference.events_dispatched());
}

TEST(EngineEquivalence, RunUntilDeadlinesWithInterleavedScheduling) {
  Engine calendar;
  ReferenceEngine reference;
  Driver<Engine> got{calendar, 7, 5};
  Driver<ReferenceEngine> want{reference, 7, 5};
  seed_initial(got, 7, 32);
  seed_initial(want, 7, 32);

  std::uint64_t h = mix(424242);
  SimNanos deadline = 0;
  for (int round = 0; round < 40; ++round) {
    h = mix(h);
    deadline += static_cast<SimNanos>(1 + h % 500'000);
    calendar.run_until(deadline);
    reference.run_until(deadline);
    ASSERT_EQ(calendar.now(), reference.now()) << "round " << round;
    ASSERT_EQ(calendar.pending(), reference.pending()) << "round " << round;
    // Mid-run arrivals: some land right at now(), some past the next
    // few deadlines, some far enough to overflow the ring.
    for (int extra = 0; extra < 3; ++extra) {
      h = mix(h);
      const auto delta = static_cast<SimNanos>(h % 3'000'000);
      got.spawn(0, calendar.now() + delta);
      want.spawn(0, reference.now() + delta);
    }
  }
  calendar.run();
  reference.run();
  expect_logs_equal(got.log, want.log);
  EXPECT_EQ(calendar.events_dispatched(), reference.events_dispatched());
}

TEST(EngineEquivalence, FarFutureTimersRideTheOverflow) {
  // Deltas far beyond the default ring window (4 ns * 16384 = ~64 us):
  // everything funnels through staging + sorted overflow + migration.
  Engine calendar;
  ReferenceEngine reference;
  Driver<Engine> got{calendar, 31, 4};
  Driver<ReferenceEngine> want{reference, 31, 4};
  std::uint64_t h = mix(31);
  for (int i = 0; i < 128; ++i) {
    h = mix(h);
    const auto at = static_cast<SimNanos>(h % 50'000'000);
    got.spawn(0, at);
    want.spawn(0, at);
  }
  calendar.run();
  reference.run();
  expect_logs_equal(got.log, want.log);
  EXPECT_EQ(calendar.now(), reference.now());
}

TEST(EngineEquivalence, MisfitCalendarKnobsStillExact) {
  // Pathological configs — a 2-bucket ring, giant buckets, 1 ns
  // buckets — must change performance only, never order.
  const CalendarConfig configs[] = {
      {.bucket_bits = 0, .bucket_count = 2},
      {.bucket_bits = 12, .bucket_count = 4},
      {.bucket_bits = 0, .bucket_count = 65536},
      {.bucket_bits = 6, .bucket_count = 64},
  };
  for (const CalendarConfig& config : configs) {
    Engine calendar(config);
    ReferenceEngine reference;
    auto got = drain_workload(calendar, 1234, 48, 7);
    auto want = drain_workload(reference, 1234, 48, 7);
    expect_logs_equal(got.log, want.log);
    EXPECT_EQ(calendar.now(), reference.now());
    EXPECT_EQ(calendar.events_dispatched(), reference.events_dispatched());
  }
}

TEST(EngineEquivalence, ScheduleAtInThePastClampsToNow) {
  Engine calendar;
  ReferenceEngine reference;
  std::vector<SimNanos> got_times;
  std::vector<SimNanos> want_times;
  calendar.schedule_at(1'000, [&] {
    calendar.schedule_at(10, [&] { got_times.push_back(calendar.now()); });
  });
  reference.schedule_at(1'000, [&] {
    reference.schedule_at(10, [&] { want_times.push_back(reference.now()); });
  });
  calendar.run();
  reference.run();
  EXPECT_EQ(got_times, want_times);
  EXPECT_EQ(got_times.size(), 1u);
  EXPECT_EQ(got_times[0], 1'000);
}

}  // namespace
}  // namespace harmless::sim

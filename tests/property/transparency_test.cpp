// The transparency theorem, as a differential property test.
//
// The paper's core promise is that HARMLESS is "fully data
// plane-transparent": a controller program written for a plain
// OpenFlow switch behaves identically when SS_2 fronts a legacy switch
// through the translator. We check exactly that — for randomized OF
// programs and randomized traffic, the multiset of (receiving host,
// payload) deliveries on the HARMLESS fabric must equal the deliveries
// on a native software switch running the *same* rules with the *same*
// port numbering.
#include <gtest/gtest.h>

#include <map>

#include "bench/common.hpp"
#include "net/build.hpp"
#include "util/rng.hpp"

namespace harmless {
namespace {

using namespace net;
using namespace openflow;
using bench::HarmlessRig;
using bench::NativeRig;
using bench::RigOptions;
using bench::host_ip;
using bench::host_mac;

constexpr int kHosts = 5;

/// A randomized but meaningful OF program over `kHosts` ports: exact
/// L2 forwarding for a subset of hosts, an ACL dropping one TCP port,
/// one IP-pair allow with higher priority, and a flood or drop miss.
std::vector<FlowModMsg> random_program(util::Rng& rng) {
  std::vector<FlowModMsg> program;

  for (int host = 0; host < kHosts; ++host) {
    if (rng.chance(0.8)) {
      FlowModMsg mod;
      mod.table_id = 0;
      mod.priority = 10;
      mod.match.eth_dst(host_mac(host));
      mod.instructions = apply({output(static_cast<std::uint32_t>(host + 1))});
      program.push_back(std::move(mod));
    }
  }

  if (rng.chance(0.7)) {  // drop one destination port entirely
    FlowModMsg acl;
    acl.table_id = 0;
    acl.priority = 50;
    acl.match.eth_type(0x0800)
        .ip_proto(static_cast<std::uint8_t>(IpProto::kUdp))
        .l4_dst(static_cast<std::uint16_t>(7000 + rng.below(3)));
    acl.instructions = Instructions{};
    program.push_back(std::move(acl));
  }

  if (rng.chance(0.7)) {  // one privileged IP pair beats the ACL
    FlowModMsg allow;
    allow.table_id = 0;
    allow.priority = 60;
    const int src = static_cast<int>(rng.below(kHosts));
    const int dst = static_cast<int>(rng.below(kHosts));
    allow.match.eth_type(0x0800).ip_src(host_ip(src)).ip_dst(host_ip(dst));
    allow.instructions = apply({output(static_cast<std::uint32_t>(dst + 1))});
    program.push_back(std::move(allow));
  }

  FlowModMsg miss;
  miss.table_id = 0;
  miss.priority = 0;
  miss.instructions = rng.chance(0.5) ? apply({flood()}) : Instructions{};
  program.push_back(std::move(miss));
  return program;
}

struct TrafficItem {
  int from;
  int to;
  std::uint16_t dst_port;
  std::uint8_t fill;
  std::size_t size;
};

std::vector<TrafficItem> random_traffic(util::Rng& rng, std::size_t count) {
  std::vector<TrafficItem> traffic;
  for (std::size_t i = 0; i < count; ++i) {
    TrafficItem item;
    item.from = static_cast<int>(rng.below(kHosts));
    do {
      item.to = static_cast<int>(rng.below(kHosts));
    } while (item.to == item.from);
    item.dst_port = static_cast<std::uint16_t>(7000 + rng.below(5));
    item.fill = static_cast<std::uint8_t>(rng.below(256));
    item.size = 64 + rng.below(400);
    traffic.push_back(item);
  }
  return traffic;
}

/// Deliveries as a sorted multiset of (host, udp dst port, fill byte).
using Deliveries = std::map<std::tuple<int, std::uint16_t, unsigned>, int>;

template <typename Rig>
Deliveries run_scenario(const std::vector<FlowModMsg>& program,
                        const std::vector<TrafficItem>& traffic,
                        softswitch::SoftSwitch& datapath, Rig& rig) {
  // Wipe the rig's preinstalled L2 state; install the program.
  for (std::size_t t = 0; t < datapath.pipeline().table_count(); ++t)
    datapath.pipeline().table(t).remove(Match{}, /*strict=*/false);
  for (const FlowModMsg& mod : program) datapath.install(mod).check();

  Deliveries deliveries;
  for (int host = 0; host < kHosts; ++host) {
    rig.hosts[static_cast<std::size_t>(host)]->set_on_receive(
        [&deliveries, host](const net::Packet& packet, const ParsedPacket& parsed) {
          if (!parsed.udp) return;
          const std::string_view payload = l4_payload(parsed, packet.frame());
          const unsigned fill =
              payload.empty() ? 0u : static_cast<unsigned char>(payload.front());
          deliveries[{host, parsed.dst_port(), fill}]++;
        });
  }

  sim::SimNanos at = 0;
  for (const TrafficItem& item : traffic) {
    at += 5'000;  // paced: keep queues empty so nothing ever drops
    rig.network.engine().schedule_at(at, [&rig, item] {
      FlowKey key;
      key.eth_src = host_mac(item.from);
      key.eth_dst = host_mac(item.to);
      key.ip_src = host_ip(item.from);
      key.ip_dst = host_ip(item.to);
      key.src_port = 5555;
      key.dst_port = item.dst_port;
      rig.hosts[static_cast<std::size_t>(item.from)]->send(
          make_udp(key, item.size, item.fill));
    });
  }
  rig.network.run();
  return deliveries;
}

class Transparency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Transparency, HarmlessEqualsNativeForSameProgram) {
  util::Rng rng(GetParam());
  const auto program = random_program(rng);
  const auto traffic = random_traffic(rng, 120);

  RigOptions options;
  options.host_count = kHosts;
  options.access_link = sim::LinkSpec::gbps(1);
  options.trunk_link = sim::LinkSpec::gbps(10);

  NativeRig native(options);
  const Deliveries expected = run_scenario(program, traffic, *native.datapath, native);

  HarmlessRig harmless_rig(options);
  const Deliveries actual =
      run_scenario(program, traffic, harmless_rig.fabric->ss2(), harmless_rig);

  EXPECT_EQ(actual, expected) << "seed=" << GetParam() << " program size=" << program.size();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Transparency,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(Transparency, BroadcastFloodsIdentically) {
  RigOptions options;
  options.host_count = kHosts;

  auto run_broadcast = [](auto& rig, softswitch::SoftSwitch& datapath) {
    for (std::size_t t = 0; t < datapath.pipeline().table_count(); ++t)
      datapath.pipeline().table(t).remove(Match{}, /*strict=*/false);
    FlowModMsg miss;
    miss.priority = 0;
    miss.instructions = apply({flood()});
    datapath.install(miss).check();

    rig.hosts[0]->arp_request(host_ip(3));
    rig.network.run();
    std::vector<std::uint64_t> replies;
    for (auto* host : rig.hosts) replies.push_back(host->counters().rx_arp_reply);
    return replies;
  };

  NativeRig native(options);
  HarmlessRig harmless_rig(options);
  EXPECT_EQ(run_broadcast(harmless_rig, harmless_rig.fabric->ss2()),
            run_broadcast(native, *native.datapath));
  // And the requester did get an answer in both worlds.
  EXPECT_EQ(harmless_rig.hosts[0]->counters().rx_arp_reply, 1u);
}

}  // namespace
}  // namespace harmless

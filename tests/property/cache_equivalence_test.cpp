// Cache-coherence theorem, as a differential property test.
//
// The flow-cache fast path must be invisible: for ANY interleaving of
// packets, flow-mods, group-mods and expiry sweeps, a cached pipeline
// must produce byte-identical outputs, packet-ins, and counters
// (per-table lookups/matches, per-entry packet/byte counts, group
// bucket counts) to an uncached pipeline fed the same sequence. This
// extends transparency_test.cpp's differential approach one layer down,
// from the fabric to the datapath's caching machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/build.hpp"
#include "openflow/pipeline.hpp"
#include "util/rng.hpp"

namespace harmless::openflow {
namespace {

using net::FlowKey;

net::MacAddr mac(int index) {
  return net::MacAddr::from_u64(0x020000000001ULL + static_cast<std::uint64_t>(index));
}
net::Ipv4Addr ip(int index) {
  return net::Ipv4Addr(0x0a000001u + static_cast<std::uint32_t>(index));
}

constexpr int kHosts = 6;
constexpr std::uint8_t kTables = 2;

/// A random mutation applied identically to both pipelines.
void random_flow_op(Pipeline& pipeline, util::Rng& rng, sim::SimNanos now) {
  const auto choice = rng.below(10);
  FlowTable& table0 = pipeline.table(0);
  FlowTable& table1 = pipeline.table(1);
  switch (choice) {
    case 0: {  // exact L2 rule in table 1, sometimes with a timeout
      FlowEntry entry;
      entry.priority = 10;
      entry.cookie = 0x12;
      entry.match.eth_dst(mac(static_cast<int>(rng.below(kHosts))));
      entry.instructions =
          apply({output(static_cast<std::uint32_t>(1 + rng.below(kHosts)))});
      if (rng.chance(0.4)) entry.idle_timeout = 40'000 + rng.below(80'000);
      if (rng.chance(0.3)) entry.hard_timeout = 100'000 + rng.below(200'000);
      (void)table1.add(std::move(entry), now);
      break;
    }
    case 1: {  // ACL prefix rule in table 0 (drop or punt), else goto
      FlowEntry entry;
      entry.priority = static_cast<std::uint16_t>(20 + rng.below(10));
      entry.cookie = 0xac1;
      entry.match.eth_type(0x0800).ip_dst_prefix(
          ip(static_cast<int>(rng.below(kHosts))), static_cast<int>(16 + rng.below(17)));
      entry.instructions = rng.chance(0.5) ? Instructions{} : apply({to_controller()});
      (void)table0.add(std::move(entry), now);
      break;
    }
    case 2: {  // header rewrite then continue to table 1
      FlowEntry entry;
      entry.priority = 15;
      entry.cookie = 0x5e7;
      entry.match.eth_type(0x0800).ip_src(ip(static_cast<int>(rng.below(kHosts))));
      entry.instructions = apply_then_goto(
          {set_eth_dst(mac(static_cast<int>(rng.below(kHosts))))}, 1);
      (void)table0.add(std::move(entry), now);
      break;
    }
    case 3: {  // group rule in table 1
      FlowEntry entry;
      entry.priority = 12;
      entry.cookie = 0x9f0;
      entry.match.eth_type(0x0800).ip_dst(ip(static_cast<int>(rng.below(kHosts))));
      entry.instructions = apply({group(1 + static_cast<std::uint32_t>(rng.below(2)))});
      (void)table1.add(std::move(entry), now);
      break;
    }
    case 4:  // remove an app's rules by cookie
      table0.remove_by_cookie(rng.chance(0.5) ? 0xac1 : 0x5e7);
      break;
    case 5: {  // non-strict delete of one destination's L2 rules
      Match match;
      match.eth_dst(mac(static_cast<int>(rng.below(kHosts))));
      table1.remove(match, /*strict=*/false);
      break;
    }
    case 6: {  // rewrite instructions of whatever a wildcard subsumes
      Match match;
      match.eth_type(0x0800);
      Instructions instructions =
          apply({output(static_cast<std::uint32_t>(1 + rng.below(kHosts)))});
      table0.modify(match, instructions, /*strict=*/false);
      break;
    }
    case 7: {  // group mod: re-point a group's buckets
      GroupEntry entry;
      entry.group_id = 1 + static_cast<std::uint32_t>(rng.below(2));
      entry.type = rng.chance(0.5) ? GroupType::kSelect : GroupType::kAll;
      entry.select_hash = rng.chance(0.5) ? SelectHash::kFiveTuple : SelectHash::kSourceIp;
      const std::size_t buckets = 1 + rng.below(3);
      for (std::size_t b = 0; b < buckets; ++b) {
        Bucket bucket;
        bucket.weight = static_cast<std::uint16_t>(1 + rng.below(3));
        bucket.actions = {output(static_cast<std::uint32_t>(1 + rng.below(kHosts)))};
        entry.buckets.push_back(std::move(bucket));
      }
      if (pipeline.groups().find(entry.group_id) != nullptr)
        (void)pipeline.groups().modify(std::move(entry));
      else
        (void)pipeline.groups().add(std::move(entry));
      break;
    }
    case 8: {  // VLAN manipulation per ingress port, then continue —
               // success of pop/set_vlan_vid depends on taggedness, the
               // trickiest structural pinning the learner does
      FlowEntry entry;
      entry.priority = 14;
      entry.cookie = 0x71a;
      entry.match.in_port(static_cast<std::uint32_t>(1 + rng.below(kHosts)));
      ActionList actions;
      switch (rng.below(3)) {
        case 0: actions = {pop_vlan()}; break;
        case 1:
          actions = {push_vlan(),
                     set_vlan_vid(static_cast<net::VlanId>(100 + rng.below(4)))};
          break;
        default:
          actions = {set_vlan_vid(static_cast<net::VlanId>(200 + rng.below(4)))};
      }
      entry.instructions = apply_then_goto(std::move(actions), 1);
      (void)table0.add(std::move(entry), now);
      break;
    }
    case 9: {  // rule matching on VLAN state in table 1
      FlowEntry entry;
      entry.priority = 16;
      entry.cookie = 0x71b;
      if (rng.chance(0.4))
        entry.match.vlan_absent();
      else if (rng.chance(0.5))
        entry.match.vlan_any();
      else
        entry.match.vlan_vid(static_cast<net::VlanId>(100 + rng.below(4)));
      entry.instructions =
          apply({output(static_cast<std::uint32_t>(1 + rng.below(kHosts)))});
      (void)table1.add(std::move(entry), now);
      break;
    }
    default: break;
  }
}

net::Packet random_packet(util::Rng& rng) {
  FlowKey key;
  const int src = static_cast<int>(rng.below(kHosts));
  const int dst = static_cast<int>(rng.below(kHosts));
  key.eth_src = mac(src);
  key.eth_dst = mac(dst);
  key.ip_src = ip(src);
  key.ip_dst = ip(dst);
  key.src_port = static_cast<std::uint16_t>(1024 + rng.below(16));
  key.dst_port = static_cast<std::uint16_t>(7000 + rng.below(4));
  if (rng.chance(0.1)) return net::make_arp_request(key.eth_src, key.ip_src, key.ip_dst);
  net::Packet packet =
      rng.chance(0.25)
          ? net::make_tcp(key, /*tcp_flags=*/0x02)
          : net::make_udp(key, 64 + rng.below(256), static_cast<std::uint8_t>(rng.below(256)));
  // A tagged share of the traffic, so vlan-dependent actions (pop,
  // set_vlan_vid) succeed for some packets and no-op for others — the
  // cached pipeline must reproduce both.
  if (rng.chance(0.3))
    net::vlan_push(packet.frame(),
                   net::VlanTag{static_cast<net::VlanId>(100 + rng.below(4)),
                                static_cast<std::uint8_t>(rng.below(8)), false});
  return packet;
}

/// Normalized projection of a result for comparison (cost is expected
/// to differ — that is the whole point of the cache).
struct Observed {
  std::vector<std::pair<std::uint32_t, net::Bytes>> outputs;
  std::vector<std::pair<std::uint8_t, net::Bytes>> packet_ins;
  bool matched;
  std::uint8_t last_table;

  explicit Observed(const PipelineResult& result)
      : matched(result.matched), last_table(result.last_table) {
    for (const auto& [port, packet] : result.outputs) outputs.emplace_back(port, packet.frame());
    for (const auto& event : result.packet_ins)
      packet_ins.emplace_back(event.table_id, event.packet.frame());
  }
  friend bool operator==(const Observed&, const Observed&) = default;
};

void expect_same_state(const Pipeline& cached, const Pipeline& uncached, std::uint64_t seed) {
  for (std::size_t t = 0; t < kTables; ++t) {
    const FlowTable& a = cached.table(t);
    const FlowTable& b = uncached.table(t);
    EXPECT_EQ(a.counters().lookups, b.counters().lookups) << "table " << t << " seed " << seed;
    EXPECT_EQ(a.counters().matches, b.counters().matches) << "table " << t << " seed " << seed;
    const auto entries_a = a.entries();
    const auto entries_b = b.entries();
    ASSERT_EQ(entries_a.size(), entries_b.size()) << "table " << t << " seed " << seed;
    for (std::size_t i = 0; i < entries_a.size(); ++i) {
      EXPECT_EQ(entries_a[i]->match.to_string(), entries_b[i]->match.to_string());
      EXPECT_EQ(entries_a[i]->packet_count, entries_b[i]->packet_count)
          << "entry " << entries_a[i]->match.to_string() << " seed " << seed;
      EXPECT_EQ(entries_a[i]->byte_count, entries_b[i]->byte_count)
          << "entry " << entries_a[i]->match.to_string() << " seed " << seed;
      EXPECT_EQ(entries_a[i]->last_hit, entries_b[i]->last_hit)
          << "entry " << entries_a[i]->match.to_string() << " seed " << seed;
    }
  }
  for (std::uint32_t group_id : {1u, 2u}) {
    const GroupEntry* a = cached.groups().find(group_id);
    const GroupEntry* b = uncached.groups().find(group_id);
    ASSERT_EQ(a == nullptr, b == nullptr) << "group " << group_id << " seed " << seed;
    if (a == nullptr) continue;
    ASSERT_EQ(a->buckets.size(), b->buckets.size());
    for (std::size_t i = 0; i < a->buckets.size(); ++i)
      EXPECT_EQ(a->buckets[i].packet_count, b->buckets[i].packet_count)
          << "group " << group_id << " bucket " << i << " seed " << seed;
  }
}

class CacheEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheEquivalence, CachedPipelineIsObservationallyIdentical) {
  const std::uint64_t seed = GetParam();

  Pipeline cached(kTables, /*specialized=*/true, /*flow_cache=*/true);
  Pipeline uncached(kTables, /*specialized=*/true, /*flow_cache=*/false);
  ASSERT_TRUE(cached.cache_enabled());
  ASSERT_FALSE(uncached.cache_enabled());

  // Both pipelines see the same op/packet interleaving, driven by twin
  // RNGs (one per pipeline) plus a shared scheduler RNG.
  util::Rng schedule(seed);
  util::Rng ops_a(seed * 31 + 7), ops_b(seed * 31 + 7);
  util::Rng traffic(seed * 131 + 1);

  // Start both with a miss entry so some traffic floods.
  for (Pipeline* pipeline : {&cached, &uncached}) {
    FlowEntry miss;
    miss.priority = 0;
    miss.instructions = apply({flood()});
    (void)pipeline->table(1).add(std::move(miss), 0);
    FlowEntry to_l2;
    to_l2.priority = 1;
    to_l2.instructions = apply_then_goto({}, 1);
    (void)pipeline->table(0).add(std::move(to_l2), 0);
  }

  sim::SimNanos now = 0;
  for (int step = 0; step < 600; ++step) {
    now += 1'000 + schedule.below(20'000);  // jittered arrivals: idle gaps happen
    if (schedule.chance(0.12)) {
      random_flow_op(cached, ops_a, now);
      random_flow_op(uncached, ops_b, now);
      continue;
    }
    if (schedule.chance(0.04)) {
      auto expired_a = cached.collect_expired(now);
      auto expired_b = uncached.collect_expired(now);
      EXPECT_EQ(expired_a.size(), expired_b.size()) << "seed " << seed << " step " << step;
      continue;
    }
    net::Packet packet = random_packet(traffic);
    net::Packet twin = packet.clone();
    const std::uint32_t in_port = static_cast<std::uint32_t>(1 + schedule.below(kHosts));
    const PipelineResult result_a = cached.run(std::move(packet), in_port, now);
    const PipelineResult result_b = uncached.run(std::move(twin), in_port, now);
    ASSERT_EQ(Observed(result_a), Observed(result_b)) << "seed " << seed << " step " << step;
    EXPECT_FALSE(result_b.cache_hit);
  }

  expect_same_state(cached, uncached, seed);
  // The workload must actually exercise the fast path for this test to
  // mean anything.
  EXPECT_GT(cached.cache().stats().hits, 0u) << "seed " << seed;
  EXPECT_GT(cached.cache().stats().invalidations + cached.cache().stats().insertions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Burst-coherence theorem: the batched datapath entry point
// (Pipeline::run_burst — whole-burst cache probe, grouped megaflow
// replay, slow-path residue) must be observationally identical to
// running the same packets one at a time through an uncached pipeline:
// byte-identical outputs and packet-ins per packet, identical flow and
// group counters — for ANY burst size and any flow-mod/group-mod/expiry
// interleaving between bursts.
class BurstEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BurstEquivalence, BatchedPipelineIsObservationallyIdentical) {
  const std::uint64_t seed = GetParam();

  Pipeline batched(kTables, /*specialized=*/true, /*flow_cache=*/true);
  Pipeline unbatched(kTables, /*specialized=*/true, /*flow_cache=*/false);

  util::Rng schedule(seed);
  util::Rng ops_a(seed * 31 + 7), ops_b(seed * 31 + 7);
  util::Rng traffic(seed * 131 + 1);

  for (Pipeline* pipeline : {&batched, &unbatched}) {
    FlowEntry miss;
    miss.priority = 0;
    miss.instructions = apply({flood()});
    (void)pipeline->table(1).add(std::move(miss), 0);
    FlowEntry to_l2;
    to_l2.priority = 1;
    to_l2.instructions = apply_then_goto({}, 1);
    (void)pipeline->table(0).add(std::move(to_l2), 0);
  }

  sim::SimNanos now = 0;
  std::uint64_t bursts_over_one = 0;
  for (int step = 0; step < 200; ++step) {
    now += 1'000 + schedule.below(20'000);
    if (schedule.chance(0.15)) {
      random_flow_op(batched, ops_a, now);
      random_flow_op(unbatched, ops_b, now);
      continue;
    }
    if (schedule.chance(0.05)) {
      auto expired_a = batched.collect_expired(now);
      auto expired_b = unbatched.collect_expired(now);
      EXPECT_EQ(expired_a.size(), expired_b.size()) << "seed " << seed << " step " << step;
      continue;
    }

    // One burst of random size: 1 (degenerate), tiny, or a full gulp —
    // with repeated flows inside the burst so the same-burst
    // learn-then-hit path (miss installs, later packet replays) runs.
    const std::size_t burst_size = 1 + schedule.below(48);
    if (burst_size > 1) ++bursts_over_one;
    std::vector<BurstPacket> burst;
    std::vector<net::Packet> twins;
    std::vector<std::uint32_t> in_ports;
    for (std::size_t i = 0; i < burst_size; ++i) {
      net::Packet packet = random_packet(traffic);
      twins.push_back(packet.clone());
      const std::uint32_t in_port = static_cast<std::uint32_t>(1 + schedule.below(kHosts));
      in_ports.push_back(in_port);
      burst.push_back(BurstPacket{std::move(packet), in_port});
    }

    BurstResult batched_result = batched.run_burst(std::move(burst), now);
    ASSERT_EQ(batched_result.results.size(), burst_size);
    for (std::size_t i = 0; i < burst_size; ++i) {
      const PipelineResult sequential =
          unbatched.run(std::move(twins[i]), in_ports[i], now);
      ASSERT_EQ(Observed(batched_result.results[i]), Observed(sequential))
          << "seed " << seed << " step " << step << " packet " << i;
      EXPECT_FALSE(sequential.cache_hit);
    }
  }

  expect_same_state(batched, unbatched, seed);
  EXPECT_GT(bursts_over_one, 0u) << "seed " << seed;
  EXPECT_GT(batched.cache().stats().hits, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstEquivalence,
                         ::testing::Values(2, 7, 11, 23, 42, 97, 131, 255, 1009, 4096));

}  // namespace
}  // namespace harmless::openflow

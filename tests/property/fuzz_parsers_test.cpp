// Robustness fuzzing for every parser that consumes external input:
// vendor config text, OIDs, raw frames, pcap files. The property is
// uniform — any byte soup either parses or returns a clean error;
// nothing throws, crashes or reads out of bounds (ASAN-clean by
// construction: all paths go through bounds-checked span reads).
#include <gtest/gtest.h>

#include "mgmt/dialects.hpp"
#include "mgmt/oid.hpp"
#include "net/build.hpp"
#include "net/parse.hpp"
#include "net/pcap.hpp"
#include "util/rng.hpp"

namespace harmless {
namespace {

std::string random_text(util::Rng& rng, std::size_t max_length) {
  // Biased toward config-ish characters so parsing gets past line 1.
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 .,/-\n\t interface switchport vlan trunk";
  std::string text;
  const std::size_t length = rng.below(max_length);
  for (std::size_t i = 0; i < length; ++i)
    text += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, DialectParseNeverThrows) {
  util::Rng rng(GetParam());
  for (const char* platform : {"ios_like", "eos_like"}) {
    auto dialect = mgmt::make_dialect(platform);
    for (int trial = 0; trial < 200; ++trial) {
      const std::string text = random_text(rng, 400);
      EXPECT_NO_THROW({ auto result = dialect->parse(text); (void)result; });
    }
  }
}

TEST_P(ParserFuzz, MutatedValidConfigParsesOrFailsCleanly) {
  util::Rng rng(GetParam());
  auto dialect = mgmt::make_ios_like_dialect();
  legacy::SwitchConfig config;
  config.hostname = "fuzz";
  config.ports[1] = legacy::PortConfig{legacy::PortMode::kAccess, 101, {}, std::nullopt,
                                       true, "leg"};
  config.ports[2] =
      legacy::PortConfig{legacy::PortMode::kTrunk, 1, {101, 102}, net::VlanId{101}, true, ""};
  const std::string valid = dialect->render(config);

  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    // Flip, delete or duplicate a few characters.
    for (int edit = 0; edit < 3 && !mutated.empty(); ++edit) {
      const std::size_t pos = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0: mutated[pos] = static_cast<char>('!' + rng.below(90)); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, mutated[pos]); break;
      }
    }
    EXPECT_NO_THROW({
      auto result = dialect->parse(mutated);
      if (result.is_ok()) {
        // If it parsed, it must re-render without throwing either.
        (void)dialect->render(*result);
      } else {
        EXPECT_FALSE(result.message().empty());
      }
    });
  }
}

TEST_P(ParserFuzz, OidParseNeverThrows) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const std::size_t length = rng.below(40);
    static constexpr char kOidish[] = "0123456789....abc-";
    for (std::size_t i = 0; i < length; ++i) text += kOidish[rng.below(sizeof(kOidish) - 1)];
    EXPECT_NO_THROW({ auto oid = mgmt::Oid::parse(text); (void)oid; });
  }
}

TEST_P(ParserFuzz, FrameParserHandlesRandomBytes) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    net::Bytes frame(rng.below(200));
    for (auto& byte : frame) byte = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_NO_THROW({ auto parsed = net::parse_packet(frame); (void)parsed; });
  }
}

TEST_P(ParserFuzz, FrameParserHandlesMutatedValidPackets) {
  util::Rng rng(GetParam());
  net::FlowKey key;
  key.eth_src = net::MacAddr::from_u64(1);
  key.eth_dst = net::MacAddr::from_u64(2);
  key.ip_src = net::Ipv4Addr(10, 0, 0, 1);
  key.ip_dst = net::Ipv4Addr(10, 0, 0, 2);
  key.src_port = 1;
  key.dst_port = 80;
  for (int trial = 0; trial < 500; ++trial) {
    net::Packet packet = rng.chance(0.5) ? net::make_http_get(key, "fuzz.example")
                                         : net::make_udp(key, 64 + rng.below(256));
    net::Bytes& frame = packet.frame();
    for (int edit = 0; edit < 4; ++edit)
      frame[rng.below(frame.size())] = static_cast<std::uint8_t>(rng.below(256));
    if (rng.chance(0.3)) frame.resize(rng.below(frame.size() + 1));
    EXPECT_NO_THROW({
      const net::ParsedPacket parsed = net::parse_packet(frame);
      // The payload view must stay inside the frame even when length
      // fields were corrupted.
      const std::string_view payload = net::l4_payload(parsed, frame);
      if (!payload.empty()) {
        EXPECT_GE(reinterpret_cast<const std::uint8_t*>(payload.data()), frame.data());
        EXPECT_LE(reinterpret_cast<const std::uint8_t*>(payload.data()) + payload.size(),
                  frame.data() + frame.size());
      }
    });
  }
}

TEST_P(ParserFuzz, PcapParserHandlesRandomBytes) {
  util::Rng rng(GetParam());
  // Seed some inputs with the valid magic so record parsing is reached.
  net::PcapWriter seed;
  for (int trial = 0; trial < 300; ++trial) {
    net::Bytes file;
    if (rng.chance(0.5)) {
      file = seed.bytes();
      const std::size_t extra = rng.below(80);
      for (std::size_t i = 0; i < extra; ++i)
        file.push_back(static_cast<std::uint8_t>(rng.below(256)));
    } else {
      file.resize(rng.below(120));
      for (auto& byte : file) byte = static_cast<std::uint8_t>(rng.below(256));
    }
    EXPECT_NO_THROW({ auto records = net::pcap_parse(file); (void)records; });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace harmless

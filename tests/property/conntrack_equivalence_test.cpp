// Conntrack sharding-coherence theorems, as differential property
// tests (the multicore_equivalence_test.cpp approach, applied to the
// stateful tier):
//
//  1. A NAT gateway workload (TCP request/response + one-way UDP,
//     random sports, random interleavings) run on a symmetric-RSS
//     multi-core datapath delivers the identical per-host outcomes,
//     the identical translated-frame multiset at the outside server,
//     the identical per-connection state snapshots (tuples, NAT
//     mappings, direction counters), and identical summed ct stats as
//     the single-core run — for every core count tried. The SNAT
//     allocator's virtual-shard steering (CtConfig::nat_steer_shards,
//     pinned across runs) is what makes the allocated external ports
//     layout-independent.
//
//  2. With conntrack disabled, the symmetric-RSS datapath remains
//     observationally identical to the single-core default — the new
//     steering stage must be semantically invisible when the stateful
//     tier is off.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "net/build.hpp"
#include "net/l4.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace harmless {
namespace {

using namespace openflow;
using net::FlowKey;
using net::Ipv4Addr;
using net::MacAddr;
using sim::SimNanos;

constexpr int kInside = 4;
constexpr std::uint32_t kOutsidePort = kInside + 1;
const Ipv4Addr kExternalIp(203, 0, 113, 1);
/// Pinned across every differential run: the SNAT allocator steers
/// against this virtual shard count, so a single-core run reproduces
/// an N-core run's port allocations exactly.
constexpr std::size_t kSteerShards = 4;

MacAddr inside_mac(int i) { return MacAddr::from_u64(0x0200000000a0ULL + i); }
Ipv4Addr inside_ip(int i) { return Ipv4Addr(10, 7, 0, static_cast<std::uint8_t>(i + 1)); }

struct Conn {
  int host;
  bool tcp;           // TCP request/response vs one-way UDP
  std::uint16_t sport;
  SimNanos at;
};

std::vector<Conn> make_workload(std::uint64_t seed) {
  util::Rng rng(seed * 733 + 3);
  std::vector<Conn> conns;
  std::set<std::pair<int, std::uint16_t>> used;  // unique (host, sport)
  SimNanos at = 20'000;
  const int count = 48 + static_cast<int>(rng.below(32));
  for (int i = 0; i < count; ++i) {
    Conn conn;
    conn.host = static_cast<int>(rng.below(kInside));
    conn.tcp = rng.chance(0.7);
    do {
      conn.sport = static_cast<std::uint16_t>(1024 + rng.below(60000));
    } while (!used.insert({conn.host, conn.sport}).second);
    conn.at = at;
    at += 2'000 + rng.below(8'000);
    conns.push_back(conn);
  }
  return conns;
}

/// Everything the sharding must not change. Timing fields (last_seen,
/// expires_at, busy_ns) are deliberately absent.
struct Observed {
  std::vector<std::uint64_t> host_ok;       // HTTP 200s per inside host
  std::vector<net::Bytes> server_frames;    // sorted: the translated multiset
  std::vector<std::string> connections;     // sorted per-connection snapshots
  std::size_t live_at_snapshot = 0;
  std::uint64_t created = 0, nat_allocated = 0, nat_failures = 0, evicted = 0;
  std::uint64_t lookups = 0, hits = 0, invalid = 0;

  friend bool operator==(const Observed&, const Observed&) = default;
};

std::string describe(const ConnEntry& entry) {
  return util::format(
      "%08x:%u->%08x:%u/%u reply=%08x:%u->%08x:%u nat=%d/%08x:%u seen_reply=%d closing=%d "
      "orig=%llu rep=%llu",
      entry.orig.src_ip, entry.orig.src_port, entry.orig.dst_ip, entry.orig.dst_port,
      entry.orig.proto, entry.reply.src_ip, entry.reply.src_port, entry.reply.dst_ip,
      entry.reply.dst_port, static_cast<int>(entry.nat.kind), entry.nat.ip, entry.nat.port,
      entry.seen_reply ? 1 : 0, entry.closing ? 1 : 0,
      static_cast<unsigned long long>(entry.packets_orig),
      static_cast<unsigned long long>(entry.packets_reply));
}

Observed run_nat_workload(const std::vector<Conn>& conns, std::size_t cores) {
  sim::Network network;
  sim::IngressSpec ingress;
  ingress.cores.cores = cores;
  if (cores > 1) ingress.cores.rss = sim::RssPolicy::kSymmetric;
  auto& sw = network.add_node<softswitch::SoftSwitch>("natgw", 0x4E, kInside + 1, 2, true, true,
                                                      32, ingress);
  CtConfig config;
  config.nat_steer_shards = kSteerShards;
  sw.enable_conntrack(config);

  std::vector<sim::Host*> hosts;
  for (int i = 0; i < kInside; ++i) {
    auto& host = network.add_host("h" + std::to_string(i), inside_mac(i), inside_ip(i));
    network.connect(host, 0, sw, static_cast<std::size_t>(i), sim::LinkSpec::gbps(1));
    hosts.push_back(&host);
  }
  auto& server =
      network.add_host("server", MacAddr::from_u64(0x99), Ipv4Addr(198, 51, 100, 7));
  network.connect(server, 0, sw, kInside, sim::LinkSpec::gbps(1));
  server.serve_http(80);

  Observed observed;
  server.set_on_receive([&observed](const net::Packet& packet, const net::ParsedPacket&) {
    observed.server_frames.emplace_back(packet.frame().begin(), packet.frame().end());
  });

  // The SourceNatApp rule shape, installed directly.
  for (const std::uint8_t proto : {6, 17}) {
    for (int i = 0; i < kInside; ++i) {
      FlowModMsg out;
      out.table_id = 0;
      out.priority = 110;
      out.match.in_port(static_cast<std::uint32_t>(i + 1)).eth_type(0x0800).ip_proto(proto);
      out.instructions = apply({ct_snat(kExternalIp, 49152, 65535), set_eth_dst(server.mac()),
                                output(kOutsidePort)});
      sw.install(out).check();
    }
    FlowModMsg back;
    back.table_id = 0;
    back.priority = 110;
    back.match.in_port(kOutsidePort)
        .eth_type(0x0800)
        .ip_dst(kExternalIp)
        .ip_proto(proto)
        .ct_tracked();
    back.instructions = apply_then_goto({ct_commit()}, 1);
    sw.install(back).check();
  }
  FlowModMsg drop0;
  drop0.table_id = 0;
  drop0.priority = 0;
  sw.install(drop0).check();
  for (int i = 0; i < kInside; ++i) {
    FlowModMsg route;
    route.table_id = 1;
    route.priority = 100;
    route.match.eth_type(0x0800).ip_dst(inside_ip(i));
    route.instructions =
        apply({set_eth_dst(inside_mac(i)), output(static_cast<std::uint32_t>(i + 1))});
    sw.install(route).check();
  }
  FlowModMsg drop1;
  drop1.table_id = 1;
  drop1.priority = 0;
  sw.install(drop1).check();

  SimNanos last_at = 0;
  for (const Conn& conn : conns) {
    last_at = std::max(last_at, conn.at);
    network.engine().schedule_at(conn.at, [&, conn] {
      FlowKey key;
      key.eth_src = inside_mac(conn.host);
      key.eth_dst = server.mac();
      key.ip_src = inside_ip(conn.host);
      key.ip_dst = server.ip();
      key.src_port = conn.sport;
      key.dst_port = conn.tcp ? 80 : 9000;
      sim::Host& host = *hosts[static_cast<std::size_t>(conn.host)];
      if (conn.tcp) {
        host.send(net::make_tcp(key, net::kTcpSyn));
        host.send(net::make_http_get(key, "nat.example"));
      } else {
        host.send(net::make_udp(key, 96));
      }
    });
  }

  // Snapshot the live connection table well before the earliest
  // expiry (timeouts are seconds; the workload is microseconds).
  const openflow::Pipeline& pipeline = sw.pipeline();
  network.engine().schedule_at(last_at + 5'000'000, [&] {
    std::vector<ConnEntry> entries;
    for (std::size_t shard = 0; shard < pipeline.shard_count(); ++shard) {
      const auto shard_entries = pipeline.conntrack(shard).snapshot();
      entries.insert(entries.end(), shard_entries.begin(), shard_entries.end());
    }
    observed.live_at_snapshot = entries.size();
    for (const ConnEntry& entry : entries) observed.connections.push_back(describe(entry));
    std::sort(observed.connections.begin(), observed.connections.end());
  });
  network.run();  // drains fully: every connection expires on the sweep

  for (sim::Host* host : hosts) observed.host_ok.push_back(host->counters().http_ok_received);
  std::sort(observed.server_frames.begin(), observed.server_frames.end());
  const auto& counters = sw.counters();
  observed.created = counters.ct_created;
  observed.nat_allocated = counters.ct_nat_allocated;
  observed.nat_failures = counters.ct_nat_failures;
  observed.evicted = counters.ct_evicted;
  observed.lookups = counters.ct_lookups;
  observed.hits = counters.ct_hits;
  observed.invalid = counters.ct_invalid;
  EXPECT_EQ(counters.ct_expired, counters.ct_created) << "drain must expire every connection";
  EXPECT_EQ(counters.ct_connections, 0u);
  EXPECT_EQ(sw.queue_drops(), 0u);
  return observed;
}

class ConntrackEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConntrackEquivalence, ShardedNatGatewayIsObservationallyIdenticalToSingleCore) {
  const std::uint64_t seed = GetParam();
  const std::vector<Conn> conns = make_workload(seed);

  const Observed single = run_nat_workload(conns, 1);
  for (const std::size_t cores : {2UL, 4UL}) {
    const Observed sharded = run_nat_workload(conns, cores);
    EXPECT_EQ(sharded, single) << "seed " << seed << " cores " << cores;
  }

  // The workload must actually exercise the machinery being compared.
  const std::uint64_t total_ok =
      std::accumulate(single.host_ok.begin(), single.host_ok.end(), std::uint64_t{0});
  EXPECT_GT(total_ok, 20u) << "seed " << seed;
  EXPECT_EQ(single.nat_failures, 0u);
  EXPECT_EQ(single.evicted, 0u);
  EXPECT_GT(single.live_at_snapshot, 40u) << "seed " << seed;
  EXPECT_GE(single.hits, 50u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConntrackEquivalence, ::testing::Values(3, 11, 23));

// ---- Part 2: ct disabled, symmetric RSS still invisible ---------------

TEST(ConntrackEquivalence, DisabledConntrackSymmetricRssMatchesSingleCore) {
  auto run = [](std::size_t cores) {
    sim::Network network;
    sim::IngressSpec ingress;
    ingress.cores.cores = cores;
    if (cores > 1) ingress.cores.rss = sim::RssPolicy::kSymmetric;
    auto& sw = network.add_node<softswitch::SoftSwitch>("sw", 0x4F, kInside, 2, true, true, 32,
                                                        ingress);
    std::vector<sim::Host*> hosts;
    for (int i = 0; i < kInside; ++i) {
      auto& host = network.add_host("h" + std::to_string(i), inside_mac(i), inside_ip(i));
      network.connect(host, 0, sw, static_cast<std::size_t>(i), sim::LinkSpec::gbps(1));
      hosts.push_back(&host);
    }
    for (int i = 0; i < kInside; ++i) {
      FlowModMsg mod;
      mod.table_id = 0;
      mod.priority = 10;
      mod.match.eth_dst(inside_mac(i));
      mod.instructions = apply({output(static_cast<std::uint32_t>(i + 1))});
      sw.install(mod).check();
    }
    util::Rng rng(5);
    SimNanos at = 10'000;
    for (int i = 0; i < 400; ++i) {
      const int src = static_cast<int>(rng.below(kInside));
      int dst;
      do {
        dst = static_cast<int>(rng.below(kInside));
      } while (dst == src);
      const auto sport = static_cast<std::uint16_t>(1024 + rng.below(60000));
      network.engine().schedule_at(at, [&, src, dst, sport] {
        FlowKey key;
        key.eth_src = inside_mac(src);
        key.eth_dst = inside_mac(dst);
        key.ip_src = inside_ip(src);
        key.ip_dst = inside_ip(dst);
        key.src_port = sport;
        key.dst_port = 443;
        hosts[static_cast<std::size_t>(src)]->send(net::make_udp(key, 64 + rng.below(400)));
      });
      at += rng.below(2'000);
    }
    network.run();
    std::vector<std::uint64_t> rx;
    for (sim::Host* host : hosts) rx.push_back(host->counters().rx_udp);
    EXPECT_EQ(sw.counters().ct_lookups, 0u);
    return rx;
  };
  const auto single = run(1);
  EXPECT_EQ(run(2), single);
  EXPECT_EQ(run(4), single);
  EXPECT_GT(std::accumulate(single.begin(), single.end(), std::uint64_t{0}), 390u);
}

}  // namespace
}  // namespace harmless

// Classifier-coherence theorem, as a differential property test.
//
// The dpcls-style per-mask subtable classifier is a pure lookup
// acceleration: for ANY interleaving of packets, flow-mods, group-mods,
// expiry sweeps, epoch bumps and CLOCK evictions at capacity, a cache
// probing hash subtables in hit-ranked order must be observationally
// identical to the verbatim linear-scan reference — byte-identical
// outputs and packet-ins, identical per-rule packet/byte counters and
// group bucket counts, identical cache statistics (hits per tier,
// misses, insertions, invalidations, evictions, flushes) and identical
// resident-entry population. Only the *work accounting* may differ:
// subtable probes vs per-entry comparisons — that difference is the
// whole point (Table 6).
//
// The workload deliberately maximizes mask diversity (exact L2, varied
// prefix lengths, in_port, VLAN presence/any/exact, DSCP) so many
// subtables coexist, and skews traffic so the rank order keeps
// reordering under the decay cadence.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/build.hpp"
#include "openflow/pipeline.hpp"
#include "util/rng.hpp"

namespace harmless::openflow {
namespace {

using net::FlowKey;

net::MacAddr mac(int index) {
  return net::MacAddr::from_u64(0x020000000001ULL + static_cast<std::uint64_t>(index));
}
net::Ipv4Addr ip(int index) {
  return net::Ipv4Addr(0x0a000001u + static_cast<std::uint32_t>(index));
}

constexpr int kHosts = 8;
constexpr std::uint8_t kTables = 2;

/// A random mutation applied identically to both pipelines. Compared
/// with cache_equivalence_test's generator this one leans harder on
/// mask diversity: every branch examines a different field set, so the
/// learned megaflows spread across many subtable signatures.
void random_flow_op(Pipeline& pipeline, util::Rng& rng, sim::SimNanos now) {
  const auto choice = rng.below(12);
  FlowTable& table0 = pipeline.table(0);
  FlowTable& table1 = pipeline.table(1);
  switch (choice) {
    case 0: {  // exact L2, sometimes with a timeout
      FlowEntry entry;
      entry.priority = 10;
      entry.cookie = 0x12;
      entry.match.eth_dst(mac(static_cast<int>(rng.below(kHosts))));
      entry.instructions = apply({output(static_cast<std::uint32_t>(1 + rng.below(kHosts)))});
      if (rng.chance(0.4)) entry.idle_timeout = 40'000 + rng.below(80'000);
      if (rng.chance(0.3)) entry.hard_timeout = 100'000 + rng.below(200'000);
      (void)table1.add(std::move(entry), now);
      break;
    }
    case 1: {  // ACL prefix rule, length drawn from the full range
      FlowEntry entry;
      entry.priority = static_cast<std::uint16_t>(20 + rng.below(10));
      entry.cookie = 0xac1;
      entry.match.eth_type(0x0800).ip_dst_prefix(
          ip(static_cast<int>(rng.below(kHosts))), static_cast<int>(8 + rng.below(25)));
      entry.instructions = rng.chance(0.5) ? Instructions{} : apply({to_controller()});
      (void)table0.add(std::move(entry), now);
      break;
    }
    case 2: {  // source-prefix rewrite then continue
      FlowEntry entry;
      entry.priority = 15;
      entry.cookie = 0x5e7;
      entry.match.eth_type(0x0800).ip_src(ip(static_cast<int>(rng.below(kHosts))));
      entry.instructions =
          apply_then_goto({set_eth_dst(mac(static_cast<int>(rng.below(kHosts))))}, 1);
      (void)table0.add(std::move(entry), now);
      break;
    }
    case 3: {  // group rule
      FlowEntry entry;
      entry.priority = 12;
      entry.cookie = 0x9f0;
      entry.match.eth_type(0x0800).ip_dst(ip(static_cast<int>(rng.below(kHosts))));
      entry.instructions = apply({group(1 + static_cast<std::uint32_t>(rng.below(2)))});
      (void)table1.add(std::move(entry), now);
      break;
    }
    case 4:  // remove an app's rules by cookie (epoch bump, mass purge)
      table0.remove_by_cookie(rng.chance(0.5) ? 0xac1 : 0x5e7);
      break;
    case 5: {  // non-strict delete of one destination's L2 rules
      Match match;
      match.eth_dst(mac(static_cast<int>(rng.below(kHosts))));
      table1.remove(match, /*strict=*/false);
      break;
    }
    case 6: {  // rewrite whatever a wildcard subsumes
      Match match;
      match.eth_type(0x0800);
      Instructions instructions =
          apply({output(static_cast<std::uint32_t>(1 + rng.below(kHosts)))});
      table0.modify(match, instructions, /*strict=*/false);
      break;
    }
    case 7: {  // group mod: re-point a group's buckets
      GroupEntry entry;
      entry.group_id = 1 + static_cast<std::uint32_t>(rng.below(2));
      entry.type = rng.chance(0.5) ? GroupType::kSelect : GroupType::kAll;
      entry.select_hash = rng.chance(0.5) ? SelectHash::kFiveTuple : SelectHash::kSourceIp;
      const std::size_t buckets = 1 + rng.below(3);
      for (std::size_t b = 0; b < buckets; ++b) {
        Bucket bucket;
        bucket.weight = static_cast<std::uint16_t>(1 + rng.below(3));
        bucket.actions = {output(static_cast<std::uint32_t>(1 + rng.below(kHosts)))};
        entry.buckets.push_back(std::move(bucket));
      }
      if (pipeline.groups().find(entry.group_id) != nullptr)
        (void)pipeline.groups().modify(std::move(entry));
      else
        (void)pipeline.groups().add(std::move(entry));
      break;
    }
    case 8: {  // per-ingress-port VLAN manipulation (structural pinning)
      FlowEntry entry;
      entry.priority = 14;
      entry.cookie = 0x71a;
      entry.match.in_port(static_cast<std::uint32_t>(1 + rng.below(kHosts)));
      ActionList actions;
      switch (rng.below(3)) {
        case 0: actions = {pop_vlan()}; break;
        case 1:
          actions = {push_vlan(),
                     set_vlan_vid(static_cast<net::VlanId>(100 + rng.below(4)))};
          break;
        default:
          actions = {set_vlan_vid(static_cast<net::VlanId>(200 + rng.below(4)))};
      }
      entry.instructions = apply_then_goto(std::move(actions), 1);
      (void)table0.add(std::move(entry), now);
      break;
    }
    case 9: {  // VLAN presence / any / exact — three more signatures
      FlowEntry entry;
      entry.priority = 16;
      entry.cookie = 0x71b;
      if (rng.chance(0.4))
        entry.match.vlan_absent();
      else if (rng.chance(0.5))
        entry.match.vlan_any();
      else
        entry.match.vlan_vid(static_cast<net::VlanId>(100 + rng.below(4)));
      entry.instructions = apply({output(static_cast<std::uint32_t>(1 + rng.below(kHosts)))});
      (void)table1.add(std::move(entry), now);
      break;
    }
    case 10: {  // DSCP class rule: yet another examined-field set
      FlowEntry entry;
      entry.priority = 18;
      entry.cookie = 0xd5c;
      entry.match.eth_type(0x0800).set(Field::kIpDscp, rng.below(2) * 46);
      entry.instructions = apply({output(static_cast<std::uint32_t>(1 + rng.below(kHosts)))});
      (void)table0.add(std::move(entry), now);
      break;
    }
    case 11: {  // L4 port rule: unwildcards a field the mice tail varies
      FlowEntry entry;
      entry.priority = 17;
      entry.cookie = 0x14d;
      entry.match.eth_type(0x0800).set(Field::kL4Dst, 7000 + rng.below(4));
      entry.instructions = apply({output(static_cast<std::uint32_t>(1 + rng.below(kHosts)))});
      (void)table1.add(std::move(entry), now);
      break;
    }
    default: break;
  }
}

/// Skewed traffic: half the packets come from 4 hot microflows (the
/// rank order's bread and butter), the rest spray hosts, L4 ports,
/// VLAN tags and ARP so lookups wander across subtables.
net::Packet random_packet(util::Rng& rng) {
  FlowKey key;
  if (rng.chance(0.5)) {
    const int e = static_cast<int>(rng.below(4));
    key.eth_src = mac(e);
    key.eth_dst = mac((e + 1) % kHosts);
    key.ip_src = ip(e);
    key.ip_dst = ip((e + 1) % kHosts);
    key.src_port = static_cast<std::uint16_t>(10'000 + e);
    key.dst_port = 443;
    return net::make_udp(key, 64);
  }
  const int src = static_cast<int>(rng.below(kHosts));
  const int dst = static_cast<int>(rng.below(kHosts));
  key.eth_src = mac(src);
  key.eth_dst = mac(dst);
  key.ip_src = ip(src);
  key.ip_dst = ip(dst);
  key.src_port = static_cast<std::uint16_t>(1024 + rng.below(64));
  key.dst_port = static_cast<std::uint16_t>(7000 + rng.below(4));
  if (rng.chance(0.1)) return net::make_arp_request(key.eth_src, key.ip_src, key.ip_dst);
  net::Packet packet =
      rng.chance(0.25)
          ? net::make_tcp(key, /*tcp_flags=*/0x02)
          : net::make_udp(key, 64 + rng.below(256), static_cast<std::uint8_t>(rng.below(256)));
  if (rng.chance(0.3))
    net::vlan_push(packet.frame(),
                   net::VlanTag{static_cast<net::VlanId>(100 + rng.below(4)),
                                static_cast<std::uint8_t>(rng.below(8)), false});
  return packet;
}

/// Normalized projection of a result for comparison (only the *work
/// accounting* — cache_scanned/cache_linear — may differ between the
/// classifier and the reference).
struct Observed {
  std::vector<std::pair<std::uint32_t, net::Bytes>> outputs;
  std::vector<std::pair<std::uint8_t, net::Bytes>> packet_ins;
  bool matched;
  bool cache_hit;
  std::uint8_t last_table;

  explicit Observed(const PipelineResult& result)
      : matched(result.matched), cache_hit(result.cache_hit), last_table(result.last_table) {
    for (const auto& [port, packet] : result.outputs) outputs.emplace_back(port, packet.frame());
    for (const auto& event : result.packet_ins)
      packet_ins.emplace_back(event.table_id, event.packet.frame());
  }
  friend bool operator==(const Observed&, const Observed&) = default;
};

void expect_same_state(const Pipeline& subtables, const Pipeline& linear, std::uint64_t seed) {
  for (std::size_t t = 0; t < kTables; ++t) {
    const FlowTable& a = subtables.table(t);
    const FlowTable& b = linear.table(t);
    EXPECT_EQ(a.counters().lookups, b.counters().lookups) << "table " << t << " seed " << seed;
    EXPECT_EQ(a.counters().matches, b.counters().matches) << "table " << t << " seed " << seed;
    const auto entries_a = a.entries();
    const auto entries_b = b.entries();
    ASSERT_EQ(entries_a.size(), entries_b.size()) << "table " << t << " seed " << seed;
    for (std::size_t i = 0; i < entries_a.size(); ++i) {
      EXPECT_EQ(entries_a[i]->match.to_string(), entries_b[i]->match.to_string());
      EXPECT_EQ(entries_a[i]->packet_count, entries_b[i]->packet_count)
          << "entry " << entries_a[i]->match.to_string() << " seed " << seed;
      EXPECT_EQ(entries_a[i]->byte_count, entries_b[i]->byte_count)
          << "entry " << entries_a[i]->match.to_string() << " seed " << seed;
      EXPECT_EQ(entries_a[i]->last_hit, entries_b[i]->last_hit)
          << "entry " << entries_a[i]->match.to_string() << " seed " << seed;
    }
  }
  for (std::uint32_t group_id : {1u, 2u}) {
    const GroupEntry* a = subtables.groups().find(group_id);
    const GroupEntry* b = linear.groups().find(group_id);
    ASSERT_EQ(a == nullptr, b == nullptr) << "group " << group_id << " seed " << seed;
    if (a == nullptr) continue;
    ASSERT_EQ(a->buckets.size(), b->buckets.size());
    for (std::size_t i = 0; i < a->buckets.size(); ++i)
      EXPECT_EQ(a->buckets[i].packet_count, b->buckets[i].packet_count)
          << "group " << group_id << " bucket " << i << " seed " << seed;
  }
}

void expect_same_cache_stats(const FlowCache& subtables, const FlowCache& linear,
                             std::uint64_t seed, int step) {
  const FlowCache::Stats& a = subtables.stats();
  const FlowCache::Stats& b = linear.stats();
  EXPECT_EQ(a.hits, b.hits) << "seed " << seed << " step " << step;
  EXPECT_EQ(a.microflow_hits, b.microflow_hits) << "seed " << seed << " step " << step;
  EXPECT_EQ(a.megaflow_hits, b.megaflow_hits) << "seed " << seed << " step " << step;
  EXPECT_EQ(a.misses, b.misses) << "seed " << seed << " step " << step;
  EXPECT_EQ(a.insertions, b.insertions) << "seed " << seed << " step " << step;
  EXPECT_EQ(a.invalidations, b.invalidations) << "seed " << seed << " step " << step;
  EXPECT_EQ(a.evictions, b.evictions) << "seed " << seed << " step " << step;
  EXPECT_EQ(a.flushes, b.flushes) << "seed " << seed << " step " << step;
  EXPECT_EQ(subtables.megaflow_count(), linear.megaflow_count())
      << "seed " << seed << " step " << step;
  EXPECT_EQ(subtables.microflow_count(), linear.microflow_count())
      << "seed " << seed << " step " << step;
}

/// Deterministic tail phase: 24 fresh exact-L2 aggregates through a
/// 12-entry megaflow tier force CLOCK evictions in both pipelines no
/// matter what the random prefix did — still compared packet by packet.
void capacity_storm(Pipeline& with_subtables, Pipeline& with_linear, sim::SimNanos& now,
                    std::uint64_t seed) {
  for (int i = 0; i < 24; ++i) {
    for (Pipeline* pipeline : {&with_subtables, &with_linear}) {
      FlowEntry entry;
      entry.priority = 30;
      entry.cookie = 0x570;
      entry.match.eth_dst(mac(100 + i));
      entry.instructions = apply({output(static_cast<std::uint32_t>(1 + i % kHosts))});
      (void)pipeline->table(1).add(std::move(entry), now);
    }
  }
  for (int round = 0; round < 2; ++round)
    for (int i = 0; i < 24; ++i) {
      now += 500;
      FlowKey key;
      key.eth_src = mac(1);
      key.eth_dst = mac(100 + i);
      key.ip_src = ip(1);
      key.ip_dst = ip(2);
      key.src_port = static_cast<std::uint16_t>(2048 + round);
      key.dst_port = 80;
      net::Packet packet = net::make_udp(key, 64);
      net::Packet twin = packet.clone();
      const PipelineResult result_a = with_subtables.run(std::move(packet), 1, now);
      const PipelineResult result_b = with_linear.run(std::move(twin), 1, now);
      ASSERT_EQ(Observed(result_a), Observed(result_b))
          << "storm seed " << seed << " dst " << i << " round " << round;
      expect_same_cache_stats(with_subtables.cache(), with_linear.cache(), seed, 10'000 + i);
    }
}

class ClassifierEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassifierEquivalence, SubtablesMatchLinearScanOnAllObservables) {
  const std::uint64_t seed = GetParam();

  Pipeline with_subtables(kTables, /*specialized=*/true, /*flow_cache=*/true);
  Pipeline with_linear(kTables, /*specialized=*/true, /*flow_cache=*/true);
  with_linear.cache().set_linear_scan(true);
  ASSERT_FALSE(with_subtables.cache().linear_scan());
  ASSERT_TRUE(with_linear.cache().linear_scan());

  // Undersized tier 2 + tiny tier 1 so CLOCK eviction and microflow
  // flushes run constantly, and an aggressive rank-decay cadence so the
  // subtable probe order keeps reshuffling mid-run — none of which may
  // leak into observables.
  FlowCache::Limits limits;
  limits.max_megaflows = 12;
  limits.max_microflows = 24;
  limits.rank_decay_lookups = 64;
  with_subtables.cache().set_limits(limits);
  with_linear.cache().set_limits(limits);

  util::Rng schedule(seed);
  util::Rng ops_a(seed * 31 + 7), ops_b(seed * 31 + 7);
  util::Rng traffic(seed * 131 + 1);

  for (Pipeline* pipeline : {&with_subtables, &with_linear}) {
    FlowEntry miss;
    miss.priority = 0;
    miss.instructions = apply({flood()});
    (void)pipeline->table(1).add(std::move(miss), 0);
    FlowEntry to_l2;
    to_l2.priority = 1;
    to_l2.instructions = apply_then_goto({}, 1);
    (void)pipeline->table(0).add(std::move(to_l2), 0);
  }

  sim::SimNanos now = 0;
  std::size_t max_subtables = 0;
  for (int step = 0; step < 800; ++step) {
    now += 1'000 + schedule.below(20'000);
    max_subtables = std::max(max_subtables, with_subtables.cache().subtable_count());
    if (schedule.chance(0.10)) {
      random_flow_op(with_subtables, ops_a, now);
      random_flow_op(with_linear, ops_b, now);
      continue;
    }
    if (schedule.chance(0.04)) {
      auto expired_a = with_subtables.collect_expired(now);
      auto expired_b = with_linear.collect_expired(now);
      EXPECT_EQ(expired_a.size(), expired_b.size()) << "seed " << seed << " step " << step;
      continue;
    }
    net::Packet packet = random_packet(traffic);
    net::Packet twin = packet.clone();
    const std::uint32_t in_port = static_cast<std::uint32_t>(1 + schedule.below(kHosts));
    const PipelineResult result_a = with_subtables.run(std::move(packet), in_port, now);
    const PipelineResult result_b = with_linear.run(std::move(twin), in_port, now);
    ASSERT_EQ(Observed(result_a), Observed(result_b)) << "seed " << seed << " step " << step;
    expect_same_cache_stats(with_subtables.cache(), with_linear.cache(), seed, step);
  }

  capacity_storm(with_subtables, with_linear, now, seed);

  expect_same_state(with_subtables, with_linear, seed);
  // The run must actually have exercised what it claims to test (CLOCK
  // eviction churn has its own deterministic differential test below —
  // a random seed may legitimately never fill tier 2 within one epoch).
  EXPECT_GT(with_subtables.cache().stats().hits, 0u) << "seed " << seed;
  EXPECT_GT(with_subtables.cache().stats().megaflow_hits, 0u) << "seed " << seed;
  EXPECT_GT(with_subtables.cache().stats().invalidations, 0u) << "seed " << seed;
  EXPECT_GT(with_subtables.cache().stats().subtable_probes, 0u) << "seed " << seed;
  EXPECT_EQ(with_linear.cache().stats().subtable_probes, 0u) << "seed " << seed;
  EXPECT_GT(max_subtables, 1u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

// Burst entry point too: run_burst's phase-1 whole-burst probe and
// phase-3 re-probing residue must agree between the classifier and the
// linear reference for any burst size.
class BurstClassifierEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BurstClassifierEquivalence, BatchedProbeAgreesAcrossClassifiers) {
  const std::uint64_t seed = GetParam();

  Pipeline with_subtables(kTables, /*specialized=*/true, /*flow_cache=*/true);
  Pipeline with_linear(kTables, /*specialized=*/true, /*flow_cache=*/true);
  with_linear.cache().set_linear_scan(true);
  FlowCache::Limits limits;
  limits.max_megaflows = 12;
  limits.max_microflows = 24;
  limits.rank_decay_lookups = 64;
  with_subtables.cache().set_limits(limits);
  with_linear.cache().set_limits(limits);

  util::Rng schedule(seed);
  util::Rng ops_a(seed * 31 + 7), ops_b(seed * 31 + 7);
  util::Rng traffic(seed * 131 + 1);

  for (Pipeline* pipeline : {&with_subtables, &with_linear}) {
    FlowEntry miss;
    miss.priority = 0;
    miss.instructions = apply({flood()});
    (void)pipeline->table(1).add(std::move(miss), 0);
    FlowEntry to_l2;
    to_l2.priority = 1;
    to_l2.instructions = apply_then_goto({}, 1);
    (void)pipeline->table(0).add(std::move(to_l2), 0);
  }

  sim::SimNanos now = 0;
  for (int step = 0; step < 200; ++step) {
    now += 1'000 + schedule.below(20'000);
    if (schedule.chance(0.15)) {
      random_flow_op(with_subtables, ops_a, now);
      random_flow_op(with_linear, ops_b, now);
      continue;
    }
    const std::size_t burst_size = 1 + schedule.below(48);
    std::vector<BurstPacket> burst_a, burst_b;
    for (std::size_t i = 0; i < burst_size; ++i) {
      net::Packet packet = random_packet(traffic);
      const std::uint32_t in_port = static_cast<std::uint32_t>(1 + schedule.below(kHosts));
      burst_b.push_back(BurstPacket{packet.clone(), in_port});
      burst_a.push_back(BurstPacket{std::move(packet), in_port});
    }
    BurstResult result_a = with_subtables.run_burst(std::move(burst_a), now);
    BurstResult result_b = with_linear.run_burst(std::move(burst_b), now);
    ASSERT_EQ(result_a.results.size(), result_b.results.size());
    EXPECT_EQ(result_a.replay_groups, result_b.replay_groups)
        << "seed " << seed << " step " << step;
    for (std::size_t i = 0; i < result_a.results.size(); ++i)
      ASSERT_EQ(Observed(result_a.results[i]), Observed(result_b.results[i]))
          << "seed " << seed << " step " << step << " packet " << i;
    expect_same_cache_stats(with_subtables.cache(), with_linear.cache(), seed, step);
  }

  capacity_storm(with_subtables, with_linear, now, seed);

  expect_same_state(with_subtables, with_linear, seed);
  EXPECT_GT(with_subtables.cache().stats().megaflow_hits, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstClassifierEquivalence,
                         ::testing::Values(2, 7, 11, 23, 42, 97, 131, 255));

// CLOCK eviction churn, deterministically: 64 per-destination
// aggregates through a 12-entry megaflow tier, with a hot elephant
// interleaved so reference bits and the clock hand stay busy. Victim
// choice depends on insertion order and hit history only — both of
// which the classifier must leave untouched.
TEST(ClassifierEquivalence, EvictionChurnAgreesWithLinearReference) {
  Pipeline with_subtables(kTables, /*specialized=*/true, /*flow_cache=*/true);
  Pipeline with_linear(kTables, /*specialized=*/true, /*flow_cache=*/true);
  with_linear.cache().set_linear_scan(true);
  FlowCache::Limits limits;
  limits.max_megaflows = 12;
  limits.max_microflows = 32;
  with_subtables.cache().set_limits(limits);
  with_linear.cache().set_limits(limits);

  for (Pipeline* pipeline : {&with_subtables, &with_linear})
    for (int dst = 0; dst < 64; ++dst) {
      FlowEntry entry;
      entry.priority = 10;
      entry.match.eth_dst(mac(100 + dst));
      entry.instructions = apply({output(static_cast<std::uint32_t>(1 + dst % kHosts))});
      (void)pipeline->table(0).add(std::move(entry), 0);
    }

  sim::SimNanos now = 1000;
  auto send = [&](int dst, std::uint16_t sport) {
    FlowKey key;
    key.eth_src = mac(0);
    key.eth_dst = mac(100 + dst);
    key.ip_src = ip(0);
    key.ip_dst = ip(1);
    key.src_port = sport;
    key.dst_port = 80;
    net::Packet packet = net::make_udp(key, 64);
    net::Packet twin = packet.clone();
    ++now;
    const PipelineResult result_a = with_subtables.run(std::move(packet), 1, now);
    const PipelineResult result_b = with_linear.run(std::move(twin), 1, now);
    ASSERT_EQ(Observed(result_a), Observed(result_b)) << "dst " << dst << " sport " << sport;
    ASSERT_EQ(result_a.cache_hit, result_b.cache_hit) << "dst " << dst << " sport " << sport;
  };

  for (int round = 0; round < 3; ++round)
    for (int dst = 0; dst < 64; ++dst) {
      send(dst, static_cast<std::uint16_t>(5000 + round));
      send(63, 7777);  // the elephant: hit between every mouse
    }

  expect_same_cache_stats(with_subtables.cache(), with_linear.cache(), /*seed=*/0, /*step=*/-1);
  expect_same_state(with_subtables, with_linear, /*seed=*/0);
  EXPECT_GT(with_subtables.cache().stats().evictions, 100u);
  EXPECT_LE(with_subtables.cache().megaflow_count(), 12u);
}

}  // namespace
}  // namespace harmless::openflow

// The paper's three demo use cases, each running over the full
// HARMLESS fabric (legacy switch + SS_1 + SS_2 + controller):
//   (a) Load Balancer — src-IP-sticky split across backends
//   (b) DMZ — pairwise default-deny policy
//   (c) Parental Control — per-user HTTP host blocking with 403s
#include <gtest/gtest.h>

#include "controller/apps/dmz.hpp"
#include "controller/apps/learning.hpp"
#include "controller/apps/load_balancer.hpp"
#include "controller/apps/parental.hpp"
#include "harmless/fabric.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"

namespace harmless {
namespace {

using namespace net;
using namespace controller;
using core::Fabric;
using core::PortMap;
using legacy::LegacySwitch;
using legacy::PortConfig;
using legacy::PortMode;
using legacy::SwitchConfig;
using sim::Host;
using sim::LinkSpec;
using sim::Network;

SwitchConfig harmless_config(int access_ports) {
  SwitchConfig config;
  config.hostname = "legacy";
  std::set<VlanId> vlans;
  for (int port = 1; port <= access_ports; ++port) {
    config.ports[port] =
        PortConfig{PortMode::kAccess, static_cast<VlanId>(100 + port), {}, std::nullopt, true, ""};
    vlans.insert(static_cast<VlanId>(100 + port));
  }
  config.ports[access_ports + 1] =
      PortConfig{PortMode::kTrunk, 1, vlans, std::nullopt, true, ""};
  return config;
}

struct UseCaseRig {
  Network network;
  LegacySwitch* legacy_switch;
  std::vector<Host*> hosts;
  std::optional<Fabric> fabric;
  Controller controller;

  explicit UseCaseRig(int access_ports) {
    legacy_switch =
        &network.add_node<LegacySwitch>("legacy", harmless_config(access_ports));
    for (int i = 0; i < access_ports; ++i) {
      Host& host = network.add_host("h" + std::to_string(i + 1),
                                    MacAddr::from_u64(0x020000000001ULL + i),
                                    Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i + 1)));
      network.connect(host, 0, *legacy_switch, static_cast<std::size_t>(i),
                      LinkSpec::gbps(1));
      hosts.push_back(&host);
    }
    std::vector<int> access;
    for (int port = 1; port <= access_ports; ++port) access.push_back(port);
    auto map = PortMap::make(access, access_ports + 1);
    fabric.emplace(Fabric::build(network, *legacy_switch, *map));
  }

  void connect_and_settle() {
    controller.connect(fabric->control_channel(), "SS_2");
    network.run();
  }
};

// ------------------------------------------------------ (a) Load Balancer

TEST(UseCaseLb, SplitsWebTrafficBySourceIpStickily) {
  // Port 1 = client uplink; ports 2..4 = backends.
  UseCaseRig rig(4);
  LoadBalancerConfig config;
  config.vip = Ipv4Addr(10, 0, 0, 100);
  config.vip_mac = MacAddr::from_u64(0x02000000dead);
  config.service_port = 80;
  config.client_ports = {1};
  for (int i = 1; i <= 3; ++i)
    config.backends.push_back(Backend{rig.hosts[static_cast<std::size_t>(i)]->mac(),
                                      rig.hosts[static_cast<std::size_t>(i)]->ip(),
                                      static_cast<std::uint32_t>(i + 1), 1});
  rig.controller.add_app<LoadBalancerApp>(config);
  rig.connect_and_settle();

  for (Host* backend : {rig.hosts[1], rig.hosts[2], rig.hosts[3]}) backend->serve_http(80);

  // 120 distinct client source IPs, one GET each, all to the VIP.
  // (The client host spoofs many source addresses — it models a router
  // uplink aggregating a client population.)
  Host& uplink = *rig.hosts[0];
  for (std::uint32_t client = 1; client <= 120; ++client) {
    FlowKey key;
    key.eth_src = uplink.mac();
    key.eth_dst = config.vip_mac;
    key.ip_src = Ipv4Addr(0xac100000u + client);  // 172.16.0.<client>
    key.ip_dst = config.vip;
    key.src_port = static_cast<std::uint16_t>(30000 + client);
    key.dst_port = 80;
    uplink.send(make_http_get(key, "vip.example"));
  }
  rig.network.run();

  // Every backend took a share, total preserved, split near-even.
  std::uint64_t total = 0;
  for (int i = 1; i <= 3; ++i) {
    const auto served = rig.hosts[static_cast<std::size_t>(i)]->counters().http_requests_served;
    EXPECT_GT(served, 20u) << "backend " << i;
    EXPECT_LT(served, 60u) << "backend " << i;
    total += served;
  }
  EXPECT_EQ(total, 120u);

  // Responses masquerade as the VIP and return to the client uplink.
  EXPECT_EQ(uplink.counters().http_ok_received, 120u);
  bool saw_vip_source = false;
  for (const auto& parsed : uplink.rx_log())
    if (parsed.tcp && parsed.ipv4 && parsed.ipv4->src == config.vip) saw_vip_source = true;
  EXPECT_TRUE(saw_vip_source);
}

TEST(UseCaseLb, SameClientAlwaysSameBackend) {
  UseCaseRig rig(3);
  LoadBalancerConfig config;
  config.vip = Ipv4Addr(10, 0, 0, 100);
  config.vip_mac = MacAddr::from_u64(0x02000000dead);
  config.client_ports = {1};
  for (int i = 1; i <= 2; ++i)
    config.backends.push_back(Backend{rig.hosts[static_cast<std::size_t>(i)]->mac(),
                                      rig.hosts[static_cast<std::size_t>(i)]->ip(),
                                      static_cast<std::uint32_t>(i + 1), 1});
  rig.controller.add_app<LoadBalancerApp>(config);
  rig.connect_and_settle();
  rig.hosts[1]->serve_http(80);
  rig.hosts[2]->serve_http(80);

  // The same source IP fires 10 requests: exactly one backend serves.
  for (int i = 0; i < 10; ++i) {
    FlowKey key;
    key.eth_src = rig.hosts[0]->mac();
    key.eth_dst = config.vip_mac;
    key.ip_src = Ipv4Addr(172, 16, 9, 9);
    key.ip_dst = config.vip;
    key.src_port = static_cast<std::uint16_t>(40000 + i);
    key.dst_port = 80;
    rig.hosts[0]->send(make_http_get(key, "vip.example"));
  }
  rig.network.run();
  const auto served_1 = rig.hosts[1]->counters().http_requests_served;
  const auto served_2 = rig.hosts[2]->counters().http_requests_served;
  EXPECT_EQ(served_1 + served_2, 10u);
  EXPECT_TRUE(served_1 == 0 || served_2 == 0) << served_1 << "/" << served_2;
}

TEST(UseCaseLb, ControllerAnswersArpForVip) {
  UseCaseRig rig(3);
  LoadBalancerConfig config;
  config.vip = Ipv4Addr(10, 0, 0, 100);
  config.vip_mac = MacAddr::from_u64(0x02000000dead);
  config.client_ports = {1};
  config.backends.push_back(Backend{rig.hosts[1]->mac(), rig.hosts[1]->ip(), 2, 1});
  auto& app = rig.controller.add_app<LoadBalancerApp>(config);
  rig.connect_and_settle();

  // The VIP is owned by nobody; the controller must answer.
  rig.hosts[0]->arp_request(config.vip);
  rig.network.run();
  EXPECT_EQ(rig.hosts[0]->counters().rx_arp_reply, 1u);
  EXPECT_EQ(app.stats().arp_replies_sent, 1u);
  bool saw_vip_mac = false;
  for (const auto& parsed : rig.hosts[0]->rx_log())
    if (parsed.arp && parsed.arp->op == ArpOp::kReply &&
        parsed.arp->sender_mac == config.vip_mac && parsed.arp->sender_ip == config.vip)
      saw_vip_mac = true;
  EXPECT_TRUE(saw_vip_mac);

  // Host-to-host ARP still resolves through the proxy's flood path.
  rig.hosts[0]->arp_request(rig.hosts[2]->ip());
  rig.network.run();
  EXPECT_EQ(rig.hosts[0]->counters().rx_arp_reply, 2u);
  EXPECT_EQ(app.stats().arp_replies_sent, 1u);  // proxy didn't answer that one
}

// --------------------------------------------------------------- (b) DMZ

TEST(UseCaseDmz, PairwisePolicyDefaultDeny) {
  UseCaseRig rig(4);
  DmzPolicy policy;
  for (int i = 0; i < 4; ++i)
    policy.hosts.push_back(DmzHost{"vm" + std::to_string(i + 1), rig.hosts[static_cast<std::size_t>(i)]->ip(),
                                   static_cast<std::uint32_t>(i + 1)});
  policy.allowed_pairs = {{"vm1", "vm2"}};  // the Fig.-1 DMZ row
  auto& app = rig.controller.add_app<DmzPolicyApp>(policy);
  rig.connect_and_settle();

  auto udp_between = [&](int from, int to) {
    FlowKey key;
    key.eth_src = rig.hosts[static_cast<std::size_t>(from)]->mac();
    key.eth_dst = rig.hosts[static_cast<std::size_t>(to)]->mac();
    key.ip_src = rig.hosts[static_cast<std::size_t>(from)]->ip();
    key.ip_dst = rig.hosts[static_cast<std::size_t>(to)]->ip();
    key.dst_port = 9000;
    return make_udp(key, 100);
  };

  // Allowed pair flows both ways.
  rig.hosts[0]->send(udp_between(0, 1));
  rig.hosts[1]->send(udp_between(1, 0));
  rig.network.run();
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, 1u);
  EXPECT_EQ(rig.hosts[0]->counters().rx_udp, 1u);

  // Every other pair is denied.
  rig.hosts[0]->send(udp_between(0, 2));
  rig.hosts[2]->send(udp_between(2, 3));
  rig.hosts[3]->send(udp_between(3, 0));
  rig.network.run();
  EXPECT_EQ(rig.hosts[2]->counters().rx_udp, 0u);
  EXPECT_EQ(rig.hosts[3]->counters().rx_udp, 0u);
  EXPECT_EQ(rig.hosts[0]->counters().rx_udp, 1u);  // unchanged

  // "Fine-tune ... using OF": allow vm1<->vm3 at runtime; it starts
  // working without touching the legacy switch.
  app.allow_pair(*rig.controller.sessions().front(), "vm1", "vm3");
  rig.network.run();
  rig.hosts[0]->send(udp_between(0, 2));
  rig.network.run();
  EXPECT_EQ(rig.hosts[2]->counters().rx_udp, 1u);
}

TEST(UseCaseDmz, ExposedServiceReachableByAnyTenant) {
  UseCaseRig rig(3);
  DmzPolicy policy;
  for (int i = 0; i < 3; ++i)
    policy.hosts.push_back(DmzHost{"vm" + std::to_string(i + 1), rig.hosts[static_cast<std::size_t>(i)]->ip(),
                                   static_cast<std::uint32_t>(i + 1)});
  policy.exposed_services = {{"vm3", 80}};
  rig.controller.add_app<DmzPolicyApp>(policy);
  rig.connect_and_settle();
  rig.hosts[2]->serve_http(80);

  rig.hosts[0]->http_get(rig.hosts[2]->mac(), rig.hosts[2]->ip(), "dmz.web");
  rig.hosts[1]->http_get(rig.hosts[2]->mac(), rig.hosts[2]->ip(), "dmz.web");
  rig.network.run();
  EXPECT_EQ(rig.hosts[2]->counters().http_requests_served, 2u);
  EXPECT_EQ(rig.hosts[0]->counters().http_ok_received, 1u);
  EXPECT_EQ(rig.hosts[1]->counters().http_ok_received, 1u);

  // But vm1 cannot reach vm3 off the exposed port.
  FlowKey key;
  key.eth_src = rig.hosts[0]->mac();
  key.eth_dst = rig.hosts[2]->mac();
  key.ip_src = rig.hosts[0]->ip();
  key.ip_dst = rig.hosts[2]->ip();
  key.dst_port = 22;
  const auto before = rig.hosts[2]->counters().rx_total;
  rig.hosts[0]->send(make_tcp(key, kTcpSyn));
  rig.network.run();
  EXPECT_EQ(rig.hosts[2]->counters().rx_total, before);
}

TEST(UseCaseDmz, PolicyValidationCatchesUnknownHosts) {
  DmzPolicy bad;
  bad.hosts.push_back(DmzHost{"vm1", Ipv4Addr(1, 1, 1, 1), 1});
  bad.allowed_pairs = {{"vm1", "ghost"}};
  EXPECT_THROW(DmzPolicyApp{bad}, util::ConfigError);
}

// -------------------------------------------- (c) Parental Control

TEST(UseCasePc, BlocksSpecificUserHostPairsWith403) {
  UseCaseRig rig(3);  // h1=kid, h2=parent, h3=web server
  ParentalControlConfig config;
  config.blocklist[rig.hosts[0]->ip()] = {"games.example"};
  rig.controller.add_app<ParentalControlApp>(config);
  rig.controller.add_app<LearningSwitchApp>(/*table=*/1);
  rig.connect_and_settle();
  rig.hosts[2]->serve_http(80);

  // Kid requests the blocked site: gets a 403, server never sees it.
  rig.hosts[0]->http_get(rig.hosts[2]->mac(), rig.hosts[2]->ip(), "games.example");
  rig.network.run();
  EXPECT_EQ(rig.hosts[0]->counters().http_forbidden_received, 1u);
  EXPECT_EQ(rig.hosts[2]->counters().http_requests_served, 0u);

  // Kid requests an allowed site on the same server: 200.
  rig.hosts[0]->http_get(rig.hosts[2]->mac(), rig.hosts[2]->ip(), "school.example");
  rig.network.run();
  // NOTE: the on-the-fly drop flow for (kid, server) now blocks *all*
  // HTTP from the kid to that server IP — the documented coarseness of
  // IP-level enforcement. The request dies in the data plane.
  EXPECT_EQ(rig.hosts[0]->counters().http_ok_received, 0u);

  // The parent requests the same "blocked" site: allowed (per-user).
  rig.hosts[1]->http_get(rig.hosts[2]->mac(), rig.hosts[2]->ip(), "games.example");
  rig.network.run();
  EXPECT_EQ(rig.hosts[1]->counters().http_ok_received, 1u);
  EXPECT_EQ(rig.hosts[2]->counters().http_requests_served, 1u);
}

TEST(UseCasePc, NonHttpTrafficUnaffected) {
  UseCaseRig rig(2);
  ParentalControlConfig config;
  config.blocklist[rig.hosts[0]->ip()] = {"games.example"};
  rig.controller.add_app<ParentalControlApp>(config);
  rig.controller.add_app<LearningSwitchApp>(/*table=*/1);
  rig.connect_and_settle();

  FlowKey key;
  key.eth_src = rig.hosts[0]->mac();
  key.eth_dst = rig.hosts[1]->mac();
  key.ip_src = rig.hosts[0]->ip();
  key.ip_dst = rig.hosts[1]->ip();
  key.dst_port = 9999;
  rig.hosts[0]->send(make_udp(key, 100));
  rig.network.run();
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, 1u);
}

TEST(UseCasePc, RuntimeBlocklistEdits) {
  ParentalControlConfig config;
  ParentalControlApp app(config);
  app.block(Ipv4Addr(10, 0, 0, 1), "NEW.Example");
  // Host matching is case-insensitive (stored lowercase).
  EXPECT_EQ(app.stats().blocked, 0u);
}

}  // namespace
}  // namespace harmless

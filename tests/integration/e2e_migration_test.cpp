// End-to-end reproduction of the paper's demo scene (Fig. 1 / F1 in
// EXPERIMENTS.md): a factory-default legacy switch is migrated by the
// Manager through the emulated SNMP/NAPALM plane, HARMLESS-S4 comes
// up, the controller enforces the DMZ policy, and the worked example
// of §2 — Host 1 and Host 2 "permitted to exchange traffic only with
// each other" — is verified packet by packet.
#include <gtest/gtest.h>

#include "controller/apps/dmz.hpp"
#include "controller/apps/learning.hpp"
#include "harmless/manager.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"

namespace harmless {
namespace {

using namespace net;
using controller::Controller;
using controller::DmzHost;
using controller::DmzPolicy;
using controller::DmzPolicyApp;
using core::HarmlessManager;
using core::MigrationRequest;
using legacy::LegacySwitch;
using legacy::PortConfig;
using legacy::PortMode;
using legacy::SwitchConfig;
using sim::Host;
using sim::LinkSpec;
using sim::Network;

SwitchConfig factory_default() {
  SwitchConfig config;
  config.hostname = "fig1-legacy";
  for (int port = 1; port <= 5; ++port)
    config.ports[port] = PortConfig{PortMode::kAccess, 1, {}, std::nullopt, true, ""};
  return config;
}

class Fig1Scene : public ::testing::Test {
 protected:
  Fig1Scene()
      : device_(network_.add_node<LegacySwitch>("legacy", factory_default())),
        mib_(agent_, device_),
        driver_(agent_, mgmt::make_ios_like_dialect()) {
    for (int i = 0; i < 4; ++i) {
      Host& host = network_.add_host("Host" + std::to_string(i + 1),
                                     MacAddr::from_u64(0x020000000001ULL + i),
                                     Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i + 1)));
      network_.connect(host, 0, device_, static_cast<std::size_t>(i), LinkSpec::gbps(1));
      hosts_.push_back(&host);
    }
  }

  Network network_;
  LegacySwitch& device_;
  mgmt::SnmpAgent agent_;
  mgmt::SwitchMib mib_;
  mgmt::SnmpDriver driver_;
  std::vector<Host*> hosts_;
};

TEST_F(Fig1Scene, WorkedExampleHost1ToHost2) {
  // DMZ policy of Fig. 1: Host 1 and Host 2 may talk only to each other.
  Controller controller("fig1-ctrl");
  DmzPolicy policy;
  policy.hosts = {DmzHost{"Host1", hosts_[0]->ip(), 1}, DmzHost{"Host2", hosts_[1]->ip(), 2},
                  DmzHost{"Host3", hosts_[2]->ip(), 3}, DmzHost{"Host4", hosts_[3]->ip(), 4}};
  policy.allowed_pairs = {{"Host1", "Host2"}};
  controller.add_app<DmzPolicyApp>(policy);

  HarmlessManager manager(driver_, device_, network_);
  MigrationRequest request;
  request.access_ports = {1, 2, 3, 4};
  request.trunk_port = 5;
  auto [report, deployment] = manager.migrate(request, controller);
  ASSERT_TRUE(report.success) << report.to_string();
  network_.run();  // handshake + policy install

  // §2: "When Host 1 sends a packet to Host 2, this is tagged with
  // VLAN id 101 and forwarded to SS_1 via the trunk port."
  EXPECT_EQ(device_.config().ports.at(1).pvid, 101);
  EXPECT_EQ(device_.config().ports.at(2).pvid, 102);

  // Observe the green-dashed path.
  auto& fabric = deployment->fabric();
  const auto ss1_runs_before = fabric.ss1().counters().pipeline_runs;
  const auto ss2_runs_before = fabric.ss2().counters().pipeline_runs;

  FlowKey key;
  key.eth_src = hosts_[0]->mac();
  key.eth_dst = hosts_[1]->mac();
  key.ip_src = hosts_[0]->ip();
  key.ip_dst = hosts_[1]->ip();
  key.dst_port = 9000;
  hosts_[0]->send(make_udp(key, 128));
  network_.run();

  // Host 2 got the packet, untagged.
  EXPECT_EQ(hosts_[1]->counters().rx_udp, 1u);
  ASSERT_FALSE(hosts_[1]->rx_log().empty());
  EXPECT_FALSE(hosts_[1]->rx_log().back().has_vlan());

  // SS_1 ran twice (trunk->patch, patch->trunk), SS_2 once (DMZ row).
  EXPECT_EQ(fabric.ss1().counters().pipeline_runs - ss1_runs_before, 2u);
  EXPECT_EQ(fabric.ss2().counters().pipeline_runs - ss2_runs_before, 1u);

  // Host 3 may reach nobody: the DMZ row doesn't cover it.
  FlowKey denied;
  denied.eth_src = hosts_[2]->mac();
  denied.eth_dst = hosts_[1]->mac();
  denied.ip_src = hosts_[2]->ip();
  denied.ip_dst = hosts_[1]->ip();
  denied.dst_port = 9000;
  hosts_[2]->send(make_udp(denied, 128));
  network_.run();
  EXPECT_EQ(hosts_[1]->counters().rx_udp, 1u);  // unchanged
}

TEST_F(Fig1Scene, TranslatorTableMatchesFigureRendering) {
  Controller controller;
  HarmlessManager manager(driver_, device_, network_);
  MigrationRequest request;
  request.access_ports = {1, 2, 3, 4};
  request.trunk_port = 5;
  auto [report, deployment] = manager.migrate(request, controller);
  ASSERT_TRUE(report.success);

  const std::string table = deployment->fabric().translator_rules().to_string();
  // The four trunk-side rows of Fig. 1's "Flow table of SS_1".
  for (int vlan = 101; vlan <= 104; ++vlan) {
    EXPECT_NE(table.find("vlan_vid=" + std::to_string(vlan)), std::string::npos) << table;
    EXPECT_NE(table.find("set_vlan_vid:" + std::to_string(vlan)), std::string::npos);
  }
  EXPECT_NE(table.find("pop_vlan"), std::string::npos);
  EXPECT_NE(table.find("push_vlan"), std::string::npos);
}

TEST(MultiSwitch, OneControllerManagesTwoMigratedSwitches) {
  // A small enterprise with two closets: each legacy switch is
  // migrated independently; one controller runs a learning app across
  // both datapaths; traffic flows within each switch.
  sim::Network network;
  Controller controller("hq");
  controller.add_app<controller::LearningSwitchApp>();

  struct Site {
    LegacySwitch* device;
    std::unique_ptr<mgmt::SnmpAgent> agent;
    std::unique_ptr<mgmt::SwitchMib> mib;
    std::unique_ptr<mgmt::SnmpDriver> driver;
    std::vector<Host*> hosts;
    std::optional<harmless::core::Deployment> deployment;
  };
  std::vector<Site> sites(2);

  for (int s = 0; s < 2; ++s) {
    Site& site = sites[static_cast<std::size_t>(s)];
    SwitchConfig config;
    config.hostname = "closet-" + std::to_string(s + 1);
    for (int port = 1; port <= 3; ++port)
      config.ports[port] = PortConfig{PortMode::kAccess, 1, {}, std::nullopt, true, ""};
    site.device = &network.add_node<LegacySwitch>(config.hostname, config);
    for (int i = 0; i < 2; ++i) {
      Host& host = network.add_host(
          "s" + std::to_string(s) + "h" + std::to_string(i),
          MacAddr::from_u64(0x020000000010ULL * (s + 1) + static_cast<std::uint64_t>(i)),
          Ipv4Addr(10, static_cast<std::uint8_t>(s), 0, static_cast<std::uint8_t>(i + 1)));
      network.connect(host, 0, *site.device, static_cast<std::size_t>(i),
                      LinkSpec::gbps(1));
      site.hosts.push_back(&host);
    }
    site.agent = std::make_unique<mgmt::SnmpAgent>();
    site.mib = std::make_unique<mgmt::SwitchMib>(*site.agent, *site.device);
    site.driver =
        std::make_unique<mgmt::SnmpDriver>(*site.agent, mgmt::make_ios_like_dialect());

    HarmlessManager manager(*site.driver, *site.device, network);
    MigrationRequest request;
    request.access_ports = {1, 2};
    request.trunk_port = 3;
    // Distinct datapath ids per site so the controller can tell the
    // SS_2 instances apart.
    request.fabric.ss1_datapath_id = 0x510 + static_cast<std::uint64_t>(s);
    request.fabric.ss2_datapath_id = 0x520 + static_cast<std::uint64_t>(s);
    auto [report, deployment] = manager.migrate(request, controller);
    ASSERT_TRUE(report.success) << report.to_string();
    site.deployment.emplace(std::move(*deployment));
  }
  network.run();
  ASSERT_EQ(controller.sessions().size(), 2u);
  EXPECT_NE(controller.sessions()[0]->datapath_id(),
            controller.sessions()[1]->datapath_id());

  // Traffic inside each site works, independently learned per datapath.
  for (Site& site : sites) {
    FlowKey key;
    key.eth_src = site.hosts[0]->mac();
    key.eth_dst = site.hosts[1]->mac();
    key.ip_src = site.hosts[0]->ip();
    key.ip_dst = site.hosts[1]->ip();
    site.hosts[0]->send(make_udp(key, 128));
  }
  network.run();
  for (Site& site : sites) EXPECT_EQ(site.hosts[1]->counters().rx_udp, 1u);
}

TEST_F(Fig1Scene, MigrationIsIdempotent) {
  Controller controller;
  controller.add_app<DmzPolicyApp>(DmzPolicy{
      {DmzHost{"Host1", hosts_[0]->ip(), 1}, DmzHost{"Host2", hosts_[1]->ip(), 2}},
      {{"Host1", "Host2"}},
      {},
      0});
  HarmlessManager manager(driver_, device_, network_);
  MigrationRequest request;
  request.access_ports = {1, 2};
  request.trunk_port = 5;

  auto [first, first_deploy] = manager.migrate(request, controller);
  ASSERT_TRUE(first.success) << first.to_string();
  const std::string config_after_first = device_.config().to_text();

  // A second migrate() finds the device already in the target state
  // and succeeds without changing it.
  auto [second, second_deploy] = manager.migrate(request, controller);
  ASSERT_TRUE(second.success) << second.to_string();
  EXPECT_EQ(device_.config().to_text(), config_after_first);
  bool already = false;
  for (const auto& step : second.steps)
    if (step.find("already in target state") != std::string::npos) already = true;
  EXPECT_TRUE(already);
}

}  // namespace
}  // namespace harmless

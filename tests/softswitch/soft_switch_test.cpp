// SoftSwitch datapath tests: wired forwarding, flood resolution, patch
// ports, the OF control session (handshake, mods, errors, barriers,
// stats, packet-out, flow-removed, port-status).
#include <gtest/gtest.h>

#include "net/build.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"

namespace harmless::softswitch {
namespace {

using namespace net;
using namespace openflow;
using sim::Host;
using sim::LinkSpec;
using sim::Network;

FlowModMsg add_flow(std::uint8_t table, std::uint16_t priority, Match match,
                    Instructions instructions) {
  FlowModMsg mod;
  mod.table_id = table;
  mod.priority = priority;
  mod.match = std::move(match);
  mod.instructions = std::move(instructions);
  return mod;
}

struct Rig {
  Network network;
  SoftSwitch* sw;
  Host* h1;
  Host* h2;
  Host* h3;

  Rig() {
    sw = &network.add_node<SoftSwitch>("ss", 0x1, 3);
    h1 = &network.add_host("h1", MacAddr::from_u64(0x1), Ipv4Addr(10, 0, 0, 1));
    h2 = &network.add_host("h2", MacAddr::from_u64(0x2), Ipv4Addr(10, 0, 0, 2));
    h3 = &network.add_host("h3", MacAddr::from_u64(0x3), Ipv4Addr(10, 0, 0, 3));
    network.connect(*h1, 0, *sw, 0, LinkSpec::gbps(1));
    network.connect(*h2, 0, *sw, 1, LinkSpec::gbps(1));
    network.connect(*h3, 0, *sw, 2, LinkSpec::gbps(1));
  }

  Packet h1_to_h2() {
    FlowKey key;
    key.eth_src = h1->mac();
    key.eth_dst = h2->mac();
    key.ip_src = h1->ip();
    key.ip_dst = h2->ip();
    key.dst_port = 80;
    return make_udp(key, 100);
  }
};

TEST(SoftSwitch, ForwardsPerFlowTable) {
  Rig rig;
  ASSERT_TRUE(
      rig.sw->install(add_flow(0, 10, Match().eth_dst(rig.h2->mac()), apply({output(2)})))
          .is_ok());
  rig.h1->send(rig.h1_to_h2());
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_udp, 1u);
  EXPECT_EQ(rig.h3->counters().rx_udp, 0u);
  EXPECT_EQ(rig.sw->counters().pipeline_runs, 1u);
  EXPECT_EQ(rig.sw->counters().packets_out, 1u);
}

TEST(SoftSwitch, MissWithEmptyTableDrops) {
  Rig rig;
  rig.h1->send(rig.h1_to_h2());
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_total, 0u);
  EXPECT_EQ(rig.sw->counters().drops_no_match, 1u);
}

TEST(SoftSwitch, FloodExcludesIngress) {
  Rig rig;
  rig.h3->set_promiscuous(true);  // observe the flood copy despite its dst MAC
  ASSERT_TRUE(rig.sw->install(add_flow(0, 1, Match(), apply({flood()}))).is_ok());
  rig.h1->send(rig.h1_to_h2());
  rig.network.run();
  EXPECT_EQ(rig.h1->counters().rx_udp, 0u);  // never back out the ingress
  EXPECT_EQ(rig.h1->counters().rx_filtered, 0u);
  EXPECT_EQ(rig.h2->counters().rx_udp, 1u);
  EXPECT_EQ(rig.h3->counters().rx_udp, 1u);
}

TEST(SoftSwitch, OutputInPortReflects) {
  Rig rig;
  rig.h1->set_promiscuous(true);  // the reflected frame is addressed to h2
  ASSERT_TRUE(
      rig.sw->install(add_flow(0, 1, Match(), apply({output(kPortInPort)}))).is_ok());
  rig.h1->send(rig.h1_to_h2());
  rig.network.run();
  EXPECT_EQ(rig.h1->counters().rx_udp, 1u);
}

TEST(SoftSwitch, InvalidOutputPortDropsSilently) {
  Rig rig;
  ASSERT_TRUE(rig.sw->install(add_flow(0, 1, Match(), apply({output(99)}))).is_ok());
  rig.h1->send(rig.h1_to_h2());
  rig.network.run();
  EXPECT_EQ(rig.h1->counters().rx_udp, 0u);
  EXPECT_EQ(rig.h2->counters().rx_udp, 0u);
}

TEST(SoftSwitch, PortDownDropsAndReportsStatus) {
  Rig rig;
  ControlChannel channel(rig.network.engine(), 1000);
  rig.sw->attach_channel(channel);
  std::vector<PortStatusMsg> statuses;
  channel.set_controller_handler([&](Message&& message) {
    if (const auto* status = std::get_if<PortStatusMsg>(&message))
      statuses.push_back(*status);
  });

  ASSERT_TRUE(rig.sw->install(add_flow(0, 1, Match(), apply({output(2)}))).is_ok());
  rig.sw->set_port_state(2, false);
  rig.h1->send(rig.h1_to_h2());
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_udp, 0u);
  EXPECT_EQ(rig.sw->counters().drops_port_down, 1u);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].desc.port_no, 2u);
  EXPECT_FALSE(statuses[0].desc.up);

  rig.sw->set_port_state(2, true);
  rig.sw->set_port_state(2, true);  // no duplicate event
  rig.network.run();
  EXPECT_EQ(statuses.size(), 2u);
}

TEST(SoftSwitch, PatchPortsHandOffBetweenSwitches) {
  Network network;
  auto& left = network.add_node<SoftSwitch>("left", 0x1, 2);
  auto& right = network.add_node<SoftSwitch>("right", 0x2, 2);
  auto& h1 = network.add_host("h1", MacAddr::from_u64(0x1), Ipv4Addr(10, 0, 0, 1));
  auto& h2 = network.add_host("h2", MacAddr::from_u64(0x2), Ipv4Addr(10, 0, 0, 2));
  network.connect(h1, 0, left, 0, LinkSpec::gbps(1));   // left OF 1
  network.connect(h2, 0, right, 0, LinkSpec::gbps(1));  // right OF 1
  left.bind_patch(2, right, 2);

  ASSERT_TRUE(left.install(add_flow(0, 1, Match().in_port(1), apply({output(2)}))).is_ok());
  ASSERT_TRUE(left.install(add_flow(0, 1, Match().in_port(2), apply({output(1)}))).is_ok());
  ASSERT_TRUE(right.install(add_flow(0, 1, Match().in_port(2), apply({output(1)}))).is_ok());
  ASSERT_TRUE(right.install(add_flow(0, 1, Match().in_port(1), apply({output(2)}))).is_ok());

  FlowKey key;
  key.eth_src = h1.mac();
  key.eth_dst = h2.mac();
  h1.send(make_udp(key, 100));
  network.run();
  EXPECT_EQ(h2.counters().rx_udp, 1u);

  // And back.
  FlowKey reverse;
  reverse.eth_src = h2.mac();
  reverse.eth_dst = h1.mac();
  h2.send(make_udp(reverse, 100));
  network.run();
  EXPECT_EQ(h1.counters().rx_udp, 1u);
}

TEST(SoftSwitch, PatchBindingValidatesRange) {
  Network network;
  auto& left = network.add_node<SoftSwitch>("left", 0x1, 2);
  auto& right = network.add_node<SoftSwitch>("right", 0x2, 2);
  EXPECT_THROW(left.bind_patch(0, right, 1), util::ConfigError);
  EXPECT_THROW(left.bind_patch(3, right, 1), util::ConfigError);
  EXPECT_THROW(left.bind_patch(1, right, 9), util::ConfigError);
}

TEST(SoftSwitch, FlowModViaChannelAndErrorReplies) {
  Rig rig;
  ControlChannel channel(rig.network.engine(), 1000);
  rig.sw->attach_channel(channel);
  std::vector<std::string> errors;
  channel.set_controller_handler([&](Message&& message) {
    if (const auto* error = std::get_if<ErrorMsg>(&message)) errors.push_back(error->text);
  });

  channel.send_to_switch(add_flow(0, 10, Match().eth_dst(rig.h2->mac()), apply({output(2)})));
  // Bad table id -> ErrorMsg.
  channel.send_to_switch(add_flow(7, 10, Match(), apply({output(1)})));
  rig.network.run();

  EXPECT_EQ(rig.sw->pipeline().table(0).size(), 1u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("bad table id"), std::string::npos);

  rig.h1->send(rig.h1_to_h2());
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_udp, 1u);
}

TEST(SoftSwitch, HandshakeEchoBarrierStats) {
  Rig rig;
  ControlChannel channel(rig.network.engine(), 1000);
  rig.sw->attach_channel(channel);

  bool got_hello = false, got_features = false, got_echo = false, got_barrier = false;
  bool got_stats = false;
  channel.set_controller_handler([&](Message&& message) {
    if (std::holds_alternative<HelloMsg>(message)) got_hello = true;
    if (const auto* features = std::get_if<FeaturesReplyMsg>(&message)) {
      got_features = true;
      EXPECT_EQ(features->datapath_id, 0x1u);
      EXPECT_EQ(features->ports.size(), 3u);
      EXPECT_EQ(features->table_count, 2);
    }
    if (const auto* echo = std::get_if<EchoReplyMsg>(&message)) {
      got_echo = true;
      EXPECT_EQ(echo->payload, 42u);
    }
    if (const auto* barrier = std::get_if<BarrierReplyMsg>(&message)) {
      got_barrier = true;
      EXPECT_EQ(barrier->xid, 9u);
    }
    if (const auto* stats = std::get_if<FlowStatsReplyMsg>(&message)) {
      got_stats = true;
      ASSERT_EQ(stats->flows.size(), 1u);
      EXPECT_EQ(stats->flows[0].priority, 10);
    }
  });

  channel.send_to_switch(HelloMsg{});
  channel.send_to_switch(FeaturesRequestMsg{});
  channel.send_to_switch(EchoRequestMsg{42});
  channel.send_to_switch(BarrierRequestMsg{9});
  channel.send_to_switch(add_flow(0, 10, Match().l4_dst(80), apply({output(1)})));
  channel.send_to_switch(FlowStatsRequestMsg{});
  rig.network.run();

  EXPECT_TRUE(got_hello);
  EXPECT_TRUE(got_features);
  EXPECT_TRUE(got_echo);
  EXPECT_TRUE(got_barrier);
  EXPECT_TRUE(got_stats);
}

TEST(SoftSwitch, PacketOutExecutesActions) {
  Rig rig;
  ControlChannel channel(rig.network.engine(), 1000);
  rig.sw->attach_channel(channel);

  PacketOutMsg out;
  out.packet = rig.h1_to_h2();
  out.actions = {output(2)};
  channel.send_to_switch(std::move(out));
  rig.network.run();
  EXPECT_EQ(rig.h2->counters().rx_udp, 1u);
}

TEST(SoftSwitch, PacketInFlowsToChannel) {
  Rig rig;
  ControlChannel channel(rig.network.engine(), 1000);
  rig.sw->attach_channel(channel);
  std::vector<PacketInMsg> punts;
  channel.set_controller_handler([&](Message&& message) {
    if (auto* punt = std::get_if<PacketInMsg>(&message)) punts.push_back(std::move(*punt));
  });
  ASSERT_TRUE(rig.sw->install(add_flow(0, 0, Match(), apply({to_controller()}))).is_ok());

  rig.h1->send(rig.h1_to_h2());
  rig.network.run();
  ASSERT_EQ(punts.size(), 1u);
  EXPECT_EQ(punts[0].in_port, 1u);
  const ParsedPacket parsed = parse_packet(punts[0].packet);
  EXPECT_EQ(parsed.eth_src, rig.h1->mac());
}

TEST(SoftSwitch, FlowRemovedSentOnTimeout) {
  Rig rig;
  ControlChannel channel(rig.network.engine(), 1000);
  rig.sw->attach_channel(channel);
  std::vector<FlowRemovedMsg> removed;
  channel.set_controller_handler([&](Message&& message) {
    if (const auto* msg = std::get_if<FlowRemovedMsg>(&message)) removed.push_back(*msg);
  });

  FlowModMsg mod = add_flow(0, 10, Match().l4_dst(80), apply({output(2)}));
  mod.hard_timeout = 50'000'000;  // 50 ms
  mod.send_flow_removed = true;
  mod.cookie = 0xabc;
  channel.send_to_switch(mod);
  rig.network.run();

  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].cookie, 0xabcu);
  EXPECT_EQ(rig.sw->pipeline().table(0).size(), 0u);
}

TEST(SoftSwitch, GroupModViaChannel) {
  Rig rig;
  ControlChannel channel(rig.network.engine(), 1000);
  rig.sw->attach_channel(channel);
  std::size_t errors = 0;
  channel.set_controller_handler([&](Message&& message) {
    if (std::holds_alternative<ErrorMsg>(message)) ++errors;
  });

  GroupModMsg group_mod;
  group_mod.entry.group_id = 5;
  group_mod.entry.buckets.push_back(Bucket{{output(2)}, 1, 0});
  channel.send_to_switch(group_mod);
  channel.send_to_switch(group_mod);  // duplicate add -> error
  rig.network.run();

  EXPECT_NE(rig.sw->pipeline().groups().find(5), nullptr);
  EXPECT_EQ(errors, 1u);
}

}  // namespace
}  // namespace harmless::softswitch

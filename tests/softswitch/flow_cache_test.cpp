// Flow-cache behavior and invalidation edges.
//
// The fast path must (a) actually hit — microflow tier for repeated
// 5-tuples, megaflow tier for wildcarded aggregates — and (b) get out
// of the way the instant the pipeline state it memoized changes: flow
// expiry, cookie-based deletion, group-mods and port state changes
// must each invalidate affected entries so the next packet re-learns.
#include <gtest/gtest.h>

#include "net/build.hpp"
#include "net/ethernet.hpp"
#include "openflow/pipeline.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"

namespace harmless::softswitch {
namespace {

using namespace net;
using namespace openflow;
using sim::Host;
using sim::LinkSpec;
using sim::Network;

Packet udp_packet(std::uint64_t src_mac, std::uint64_t dst_mac, std::uint16_t src_port,
                  std::uint16_t dst_port = 80) {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(src_mac);
  key.eth_dst = MacAddr::from_u64(dst_mac);
  key.ip_src = Ipv4Addr(10, 0, 0, 1);
  key.ip_dst = Ipv4Addr(10, 0, 0, 2);
  key.src_port = src_port;
  key.dst_port = dst_port;
  return make_udp(key, 100);
}

FlowEntry l2_entry(std::uint64_t dst_mac, std::uint32_t out_port,
                   std::uint16_t priority = 10) {
  FlowEntry entry;
  entry.priority = priority;
  entry.match.eth_dst(MacAddr::from_u64(dst_mac));
  entry.instructions = apply({output(out_port)});
  return entry;
}

// ---------------------------------------------------------------- tiers

TEST(FlowCache, MicroflowTierServesRepeatedFiveTuples) {
  Pipeline pipeline(1);
  ASSERT_TRUE(pipeline.table(0).add(l2_entry(0x2, 2), 0).is_ok());

  for (int i = 0; i < 5; ++i) {
    auto result = pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 1000 + i);
    EXPECT_EQ(result.cache_hit, i > 0) << "packet " << i;
    ASSERT_EQ(result.outputs.size(), 1u);
    EXPECT_EQ(result.outputs[0].first, 2u);
  }
  EXPECT_EQ(pipeline.cache().stats().misses, 1u);
  EXPECT_EQ(pipeline.cache().stats().microflow_hits, 4u);
  EXPECT_EQ(pipeline.cache().stats().megaflow_hits, 0u);
  // The one slow path installed one megaflow covering all five packets.
  EXPECT_EQ(pipeline.cache().megaflow_count(), 1u);
}

TEST(FlowCache, MegaflowTierCoversFieldsNoRuleExamines) {
  Pipeline pipeline(1);
  ASSERT_TRUE(pipeline.table(0).add(l2_entry(0x2, 2), 0).is_ok());

  // Vary the L4 source port: distinct microflows, one megaflow — no
  // rule ever looks at L4, so the learned entry wildcards it.
  for (std::uint16_t port = 0; port < 32; ++port) {
    auto result = pipeline.run(udp_packet(0x1, 0x2, 1024 + port), 1, 1000 + port);
    EXPECT_EQ(result.cache_hit, port > 0) << "port " << port;
  }
  EXPECT_EQ(pipeline.cache().megaflow_count(), 1u);
  EXPECT_EQ(pipeline.cache().stats().megaflow_hits, 31u);
  // Repeating a port now hits the microflow tier.
  auto result = pipeline.run(udp_packet(0x1, 0x2, 1024), 1, 5000);
  EXPECT_TRUE(result.cache_hit);
  EXPECT_EQ(pipeline.cache().stats().microflow_hits, 1u);
}

TEST(FlowCache, RewrittenFieldsDoNotFragmentMegaflows) {
  // A rule matching only in_port that rewrites eth_dst: the rewrite's
  // success depends on packet structure, not the old value, so flows
  // with different original destinations must share one megaflow.
  Pipeline pipeline(1);
  FlowEntry entry;
  entry.priority = 10;
  entry.match.in_port(1);
  entry.instructions =
      apply({set_eth_dst(MacAddr::from_u64(0x999)), output(2)});
  ASSERT_TRUE(pipeline.table(0).add(std::move(entry), 0).is_ok());

  for (std::uint64_t dst = 1; dst <= 8; ++dst) {
    auto result = pipeline.run(udp_packet(0x1, dst, 5555), 1, 1000 + static_cast<sim::SimNanos>(dst));
    EXPECT_EQ(result.cache_hit, dst > 1) << "dst " << dst;
    ASSERT_EQ(result.outputs.size(), 1u);
    EXPECT_EQ(result.outputs[0].first, 2u);
    // The rewrite really happened on the replayed path too.
    const auto parsed = net::parse_packet(result.outputs[0].second);
    EXPECT_EQ(parsed.eth_dst.to_u64(), 0x999u) << "dst " << dst;
  }
  EXPECT_EQ(pipeline.cache().megaflow_count(), 1u);
}

TEST(FlowCache, UnsupportedSetFieldDoesNotSuppressLearning) {
  // set_field on a field action.cpp cannot rewrite (e.g. ip_dscp)
  // silently no-ops, so the packet keeps its original value and a
  // later table's examination of it must still be learned — otherwise
  // one flow's megaflow would wrongly cover packets with other values.
  Pipeline pipeline(2);
  FlowEntry rewrite;
  rewrite.priority = 10;
  rewrite.match.in_port(1);
  rewrite.instructions =
      apply_then_goto({SetFieldAction{Field::kIpDscp, 46}}, 1);
  ASSERT_TRUE(pipeline.table(0).add(std::move(rewrite), 0).is_ok());
  FlowEntry dscp_zero;
  dscp_zero.priority = 20;
  dscp_zero.match.eth_type(0x0800).set(Field::kIpDscp, 0);
  dscp_zero.instructions = apply({output(2)});
  ASSERT_TRUE(pipeline.table(1).add(std::move(dscp_zero), 0).is_ok());
  FlowEntry fallback;
  fallback.priority = 0;
  fallback.instructions = apply({output(3)});
  ASSERT_TRUE(pipeline.table(1).add(std::move(fallback), 0).is_ok());

  // dscp=0 packet learns the dscp_zero path...
  auto result = pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 100);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].first, 2u);
  // ...and a dscp=46 packet must NOT be covered by that megaflow.
  net::Packet marked = udp_packet(0x1, 0x2, 5555);
  {
    auto& frame = marked.frame();
    frame[net::kEthHeaderSize + 1] = 46 << 2;  // IPv4 DSCP field
  }
  result = pipeline.run(std::move(marked), 1, 200);
  EXPECT_FALSE(result.cache_hit);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].first, 3u);
}

TEST(FlowCache, CachedDropIsStillADrop) {
  Pipeline pipeline(1);  // empty table: OF1.3 default-drops
  for (int i = 0; i < 3; ++i) {
    auto result = pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 1000 + i);
    EXPECT_TRUE(result.dropped());
    EXPECT_FALSE(result.matched);
    EXPECT_EQ(result.cache_hit, i > 0);
  }
}

// --------------------------------------------------------- invalidation

TEST(FlowCache, FlowModInvalidatesAffectedEntries) {
  Pipeline pipeline(1);
  ASSERT_TRUE(pipeline.table(0).add(l2_entry(0x2, 2), 0).is_ok());
  (void)pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 1000);  // learn
  ASSERT_TRUE(pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 1001).cache_hit);

  // A higher-priority rule re-points the flow; the stale cached output
  // must not survive.
  ASSERT_TRUE(pipeline.table(0).add(l2_entry(0x2, 3, /*priority=*/20), 1002).is_ok());
  auto result = pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 1003);
  EXPECT_FALSE(result.cache_hit);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].first, 3u);
  EXPECT_GE(pipeline.cache().stats().invalidations, 1u);
  // And the re-learned entry serves the new rule from the cache.
  result = pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 1004);
  EXPECT_TRUE(result.cache_hit);
  EXPECT_EQ(result.outputs[0].first, 3u);
}

TEST(FlowCache, ExpirySweepInvalidates) {
  Pipeline pipeline(1);
  FlowEntry entry = l2_entry(0x2, 2);
  entry.hard_timeout = 10'000;
  ASSERT_TRUE(pipeline.table(0).add(std::move(entry), 0).is_ok());
  (void)pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 100);
  ASSERT_TRUE(pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 200).cache_hit);

  ASSERT_EQ(pipeline.collect_expired(20'000).size(), 1u);
  auto result = pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 20'100);
  EXPECT_FALSE(result.cache_hit);
  EXPECT_TRUE(result.dropped());  // the rule is gone; default drop
}

TEST(FlowCache, LazyExpiryWithoutSweepInvalidates) {
  // No sweep runs here: the cached entry itself must refuse to hit once
  // a referenced flow entry has timed out, and the resulting slow path
  // performs the table's lazy expiry.
  Pipeline pipeline(1);
  FlowEntry entry = l2_entry(0x2, 2);
  entry.idle_timeout = 10'000;
  ASSERT_TRUE(pipeline.table(0).add(std::move(entry), 0).is_ok());
  (void)pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 100);
  // Cache hits keep refreshing the idle timer, exactly like real hits.
  ASSERT_TRUE(pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 8'000).cache_hit);
  ASSERT_TRUE(pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 16'000).cache_hit);

  // A 10 ms silence idles the rule out; the next packet must slow-path.
  auto result = pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 40'000);
  EXPECT_FALSE(result.cache_hit);
  EXPECT_TRUE(result.dropped());
  EXPECT_EQ(pipeline.table(0).size(), 0u);  // lazy expiry fired
}

TEST(FlowCache, RemoveByCookieInvalidates) {
  Pipeline pipeline(1);
  FlowEntry entry = l2_entry(0x2, 2);
  entry.cookie = 0xbeef;
  ASSERT_TRUE(pipeline.table(0).add(std::move(entry), 0).is_ok());
  (void)pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 100);
  ASSERT_TRUE(pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 200).cache_hit);

  ASSERT_EQ(pipeline.table(0).remove_by_cookie(0xbeef).size(), 1u);
  auto result = pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 300);
  EXPECT_FALSE(result.cache_hit);
  EXPECT_TRUE(result.dropped());
}

TEST(FlowCache, GroupModInvalidates) {
  Pipeline pipeline(1);
  GroupEntry group_entry;
  group_entry.group_id = 7;
  group_entry.type = GroupType::kIndirect;
  group_entry.buckets.push_back(Bucket{{output(2)}, 1, 0});
  ASSERT_TRUE(pipeline.groups().add(group_entry).is_ok());

  FlowEntry entry;
  entry.priority = 10;
  entry.match.eth_dst(MacAddr::from_u64(0x2));
  entry.instructions = apply({group(7)});
  ASSERT_TRUE(pipeline.table(0).add(std::move(entry), 0).is_ok());

  (void)pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 100);
  auto result = pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 200);
  ASSERT_TRUE(result.cache_hit);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].first, 2u);

  // Re-point the group: the cached program references the group id, so
  // it must re-learn (and then serve the new bucket from the cache).
  group_entry.buckets[0].actions = {output(3)};
  ASSERT_TRUE(pipeline.groups().modify(group_entry).is_ok());
  result = pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 300);
  EXPECT_FALSE(result.cache_hit);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].first, 3u);
  result = pipeline.run(udp_packet(0x1, 0x2, 5555), 1, 400);
  EXPECT_TRUE(result.cache_hit);
  EXPECT_EQ(result.outputs[0].first, 3u);
}

TEST(FlowCache, PortStateChangeInvalidates) {
  Network network;
  auto& sw = network.add_node<SoftSwitch>("ss", 0x1, 3);
  auto& h1 = network.add_host("h1", MacAddr::from_u64(0x1), Ipv4Addr(10, 0, 0, 1));
  auto& h2 = network.add_host("h2", MacAddr::from_u64(0x2), Ipv4Addr(10, 0, 0, 2));
  auto& h3 = network.add_host("h3", MacAddr::from_u64(0x3), Ipv4Addr(10, 0, 0, 3));
  network.connect(h1, 0, sw, 0, LinkSpec::gbps(1));
  network.connect(h2, 0, sw, 1, LinkSpec::gbps(1));
  network.connect(h3, 0, sw, 2, LinkSpec::gbps(1));

  FlowModMsg mod;
  mod.priority = 10;
  mod.match.eth_dst(h2.mac());
  mod.instructions = apply({output(2)});
  ASSERT_TRUE(sw.install(mod).is_ok());

  auto send_one = [&] {
    FlowKey key;
    key.eth_src = h1.mac();
    key.eth_dst = h2.mac();
    key.ip_src = h1.ip();
    key.ip_dst = h2.ip();
    key.dst_port = 80;
    h1.send(make_udp(key, 100));
    network.run();
  };

  send_one();
  send_one();
  EXPECT_EQ(sw.counters().cache_hits, 1u);
  EXPECT_EQ(sw.counters().cache_misses, 1u);
  const std::uint64_t invalidations_before = sw.counters().cache_invalidations;

  sw.set_port_state(2, /*up=*/false);
  EXPECT_GT(sw.counters().cache_invalidations, invalidations_before);
  send_one();  // re-learns; the packet is dropped at the down port
  EXPECT_EQ(sw.counters().cache_misses, 2u);
  EXPECT_EQ(h2.counters().rx_udp, 2u);

  sw.set_port_state(2, /*up=*/true);
  send_one();  // port back up: re-learn again, delivery resumes
  EXPECT_EQ(sw.counters().cache_misses, 3u);
  EXPECT_EQ(h2.counters().rx_udp, 3u);
}

// ------------------------------------------------------------- counters

TEST(FlowCache, CacheHitsKeepFlowCountersExact) {
  Pipeline pipeline(1);
  ASSERT_TRUE(pipeline.table(0).add(l2_entry(0x2, 2), 0).is_ok());
  std::size_t bytes = 0;
  for (int i = 0; i < 4; ++i) {
    net::Packet packet = udp_packet(0x1, 0x2, 5555);
    bytes += packet.size();
    (void)pipeline.run(std::move(packet), 1, 1000 + i);
  }
  const auto entries = pipeline.table(0).entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0]->packet_count, 4u);
  EXPECT_EQ(entries[0]->byte_count, bytes);
  EXPECT_EQ(pipeline.table(0).counters().lookups, 4u);
  EXPECT_EQ(pipeline.table(0).counters().matches, 4u);
}

TEST(FlowCache, CapacityPressureEvictsInsteadOfGrowingUnbounded) {
  Pipeline pipeline(1);
  FlowCache::Limits limits;
  limits.max_megaflows = 8;
  limits.max_microflows = 64;
  pipeline.cache().set_limits(limits);
  // Each destination MAC is its own megaflow (the rule set is per-dst);
  // 100 dsts against an 8-entry cache must evict one at a time (CLOCK),
  // never grow past the limit.
  for (std::uint64_t dst = 1; dst <= 100; ++dst) {
    ASSERT_TRUE(pipeline.table(0).add(l2_entry(dst, 2), 0).is_ok());
  }
  for (std::uint64_t dst = 1; dst <= 100; ++dst)
    (void)pipeline.run(udp_packet(0x777, dst, 5555), 1, 1000 + static_cast<sim::SimNanos>(dst));
  EXPECT_LE(pipeline.cache().megaflow_count(), 8u);
  EXPECT_GE(pipeline.cache().stats().evictions, 92u);
}

TEST(FlowCache, SubtablesProbePerMaskNotPerEntry) {
  // The dpcls classifier's whole point: tier-2 lookup cost is counted
  // (and billed) per distinct mask signature, not per resident entry —
  // and the linear-scan ablation still reports per-entry comparisons.
  FlowCache cache;
  auto view_for = [](std::uint64_t dst, std::uint64_t sport) {
    FieldView view;
    view.set(Field::kEthDst, dst);
    view.set(Field::kL4Src, sport);
    return view;
  };
  auto exact_dst_megaflow = [](std::uint64_t dst) {
    MegaflowEntry entry;
    entry.required_present = field_bit(Field::kEthDst);
    entry.masks[static_cast<std::size_t>(Field::kEthDst)] = field_all_ones(Field::kEthDst);
    entry.values[static_cast<std::size_t>(Field::kEthDst)] = dst;
    return entry;
  };
  for (std::uint64_t dst = 1; dst <= 8; ++dst)
    (void)cache.insert(exact_dst_megaflow(dst), view_for(dst, dst));
  MegaflowEntry in_port_megaflow;
  in_port_megaflow.required_present = field_bit(Field::kInPort);
  in_port_megaflow.masks[static_cast<std::size_t>(Field::kInPort)] =
      field_all_ones(Field::kInPort);
  in_port_megaflow.values[static_cast<std::size_t>(Field::kInPort)] = 7;
  {
    FieldView view;
    view.set(Field::kInPort, 7);
    (void)cache.insert(std::move(in_port_megaflow), view);
  }

  // 9 megaflows, but only 2 distinct mask signatures.
  EXPECT_EQ(cache.megaflow_count(), 9u);
  EXPECT_EQ(cache.subtable_count(), 2u);

  // A fresh sport misses tier 1; the eth_dst subtable answers in one
  // hashed probe no matter how many exact-dst entries it holds (the
  // in_port subtable is rejected by the presence pre-check, unbilled).
  std::uint32_t scanned = 0;
  ASSERT_NE(cache.lookup(view_for(5, 999), 0, &scanned), nullptr);
  EXPECT_EQ(scanned, 1u);
  EXPECT_EQ(cache.stats().subtable_probes, 1u);

  // The ablation pays per entry again: dst 8 is the 8th insertion, so
  // the linear reference compares 8 candidates to find it.
  cache.set_linear_scan(true);
  scanned = 0;
  ASSERT_NE(cache.lookup(view_for(8, 999), 0, &scanned), nullptr);
  EXPECT_EQ(scanned, 8u);
  EXPECT_EQ(cache.stats().subtable_probes, 1u);  // no hashed probes in linear mode
}

TEST(FlowCache, MicroflowKeyVectorStaysBoundedAcrossTierOneResets) {
  // Regression: a long-lived elephant megaflow re-seeds the microflow
  // tier after every tier-1 capacity reset, and each re-seed used to
  // append another (now stale or duplicate) key to microflow_keys —
  // unbounded growth for exactly the entries that live longest. The
  // cache now compacts the vector at power-of-two watermarks.
  FlowCache cache;
  FlowCache::Limits limits;
  limits.max_megaflows = 8;
  limits.max_microflows = 4;  // tiny tier 1: constant flush pressure
  cache.set_limits(limits);

  auto view_for = [](std::uint64_t dst, std::uint64_t sport) {
    FieldView view;
    view.set(Field::kEthDst, dst);
    if (sport != 0) view.set(Field::kL4Src, sport);
    return view;
  };
  auto exact_dst_megaflow = [](std::uint64_t dst) {
    MegaflowEntry entry;
    entry.required_present = field_bit(Field::kEthDst);
    entry.masks[static_cast<std::size_t>(Field::kEthDst)] = field_all_ones(Field::kEthDst);
    entry.values[static_cast<std::size_t>(Field::kEthDst)] = dst;
    return entry;
  };

  MegaflowEntry* elephant = cache.insert(exact_dst_megaflow(0x22), view_for(0x22, 1));
  for (std::uint64_t round = 1; round <= 2000; ++round) {
    // A one-shot mouse installs (flushing tier 1 whenever it is full)...
    (void)cache.insert(exact_dst_megaflow(0x1000 + round), view_for(0x1000 + round, 0));
    // ...and the elephant's next microflow re-seeds tier 1 with a fresh
    // key via a tier-2 hit.
    MegaflowEntry* hit = cache.lookup(view_for(0x22, 1 + round), /*now=*/0);
    ASSERT_EQ(hit, elephant) << "round " << round;
  }
  EXPECT_GT(cache.stats().flushes, 100u);     // tier-1 resets really happened
  EXPECT_GT(cache.stats().evictions, 1000u);  // and CLOCK churned the mice
  // ~2000 keys accumulated before the fix; the compaction watermark
  // (64) now bounds it regardless of the entry's lifetime.
  EXPECT_LE(elephant->microflow_keys.size(), 64u);
}

TEST(FlowCache, ClockEvictionKeepsElephantsResident) {
  // An elephant aggregate interleaved with a parade of one-shot mice
  // through an under-provisioned cache: second-chance eviction must
  // recycle the mice and keep the elephant's megaflow hitting (the old
  // wholesale flush cold-started it every ~8 mice).
  Pipeline pipeline(1);
  FlowCache::Limits limits;
  limits.max_megaflows = 8;
  pipeline.cache().set_limits(limits);
  for (std::uint64_t dst = 1; dst <= 200; ++dst)
    ASSERT_TRUE(pipeline.table(0).add(l2_entry(dst, 2), 0).is_ok());

  sim::SimNanos now = 1000;
  (void)pipeline.run(udp_packet(0x777, 200, 5555), 1, now);  // elephant learns (dst 200)
  std::uint64_t elephant_misses = 0;
  for (std::uint64_t mouse = 1; mouse <= 100; ++mouse) {
    (void)pipeline.run(udp_packet(0x777, mouse, 6000), 1, ++now);  // one-shot mouse
    auto result = pipeline.run(udp_packet(0x777, 200, 5555), 1, ++now);
    if (!result.cache_hit) ++elephant_misses;
  }
  EXPECT_EQ(elephant_misses, 0u);
  EXPECT_GT(pipeline.cache().stats().evictions, 0u);
}

}  // namespace
}  // namespace harmless::softswitch

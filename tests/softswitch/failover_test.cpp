// Controller-loss handling on the software switch: liveness probing,
// fail-secure vs fail-standalone degraded modes, backoff reconnect,
// full-state resync — plus the failable ControlChannel's drop
// attribution and the legacy switch's link-down MAC flush.
//
// Every test drives the engine with run_until: an armed liveness probe
// rescheudles itself forever, so run() would never return.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "controller/apps/static_flows.hpp"
#include "controller/controller.hpp"
#include "legacy/legacy_switch.hpp"
#include "openflow/channel.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"

namespace {

using namespace harmless;
using openflow::ControlChannel;
using softswitch::FailoverSpec;
using softswitch::SoftSwitch;

constexpr sim::SimNanos kMs = 1'000'000;

net::MacAddr host_mac(int index) {
  return net::MacAddr::from_u64(0x020000000001ULL + static_cast<std::uint64_t>(index));
}
net::Ipv4Addr host_ip(int index) {
  return net::Ipv4Addr(0x0a000001u + static_cast<std::uint32_t>(index));
}

openflow::FlowModMsg l2_rule(int host_index) {
  openflow::FlowModMsg mod;
  mod.table_id = 0;
  mod.priority = 10;
  mod.match.eth_dst(host_mac(host_index));
  mod.instructions =
      openflow::apply({openflow::output(static_cast<std::uint32_t>(host_index + 1))});
  return mod;
}

openflow::FlowModMsg miss_to_controller() {
  openflow::FlowModMsg mod;
  mod.table_id = 0;
  mod.priority = 0;
  mod.instructions = openflow::apply({openflow::to_controller()});
  return mod;
}

/// N hosts on one controller-managed soft switch; the controller's
/// StaticFlowApp programs one exact-match L2 rule per host plus a
/// table-miss punt, so on_reconnect re-installs the same state.
struct Rig {
  sim::Network network;
  SoftSwitch* sw = nullptr;
  std::vector<sim::Host*> hosts;
  std::unique_ptr<ControlChannel> channel;
  controller::Controller ctrl;
  controller::Session* session = nullptr;
  std::size_t rule_count = 0;

  explicit Rig(int host_count, const FailoverSpec& spec, bool install_l2 = true) {
    sw = &network.add_node<SoftSwitch>("sw", 0xA5, static_cast<std::size_t>(host_count),
                                       /*table_count=*/1);
    for (int i = 0; i < host_count; ++i) {
      sim::Host& host = network.add_host("h" + std::to_string(i), host_mac(i), host_ip(i));
      network.connect(host, 0, *sw, static_cast<std::size_t>(i), sim::LinkSpec::gbps(10));
      hosts.push_back(&host);
    }
    channel = std::make_unique<ControlChannel>(network.engine());
    sw->attach_channel(*channel);
    sw->set_failover(spec);
    auto& app = ctrl.add_app<controller::StaticFlowApp>();
    if (install_l2) {
      for (int i = 0; i < host_count; ++i) app.flow(l2_rule(i));
      rule_count += static_cast<std::size_t>(host_count);
    }
    app.flow(miss_to_controller());
    ++rule_count;
    session = &ctrl.connect(*channel, "sw");
    network.run_until(2 * kMs);  // handshake + installs
  }

  void stream(int from, int to, std::size_t count, sim::SimNanos interval = 10'000) {
    hosts[static_cast<std::size_t>(from)]->send_udp_stream(
        hosts[static_cast<std::size_t>(to)]->mac(), hosts[static_cast<std::size_t>(to)]->ip(),
        count, 64, interval);
  }
};

FailoverSpec probing(FailoverSpec::Mode mode) {
  FailoverSpec spec;
  spec.mode = mode;
  spec.echo_interval_ns = 500'000;  // 500 us probes -> ~1.5 ms detection
  spec.echo_miss_threshold = 3;
  return spec;
}

TEST(Failover, HandshakeInstallsAndProbesStayHealthy) {
  Rig rig(2, probing(FailoverSpec::Mode::kFailSecure));
  EXPECT_TRUE(rig.sw->control_connected());
  EXPECT_EQ(rig.sw->pipeline().table(0).entries().size(), rig.rule_count);
  rig.network.run_until(20 * kMs);
  const auto& stats = rig.sw->failover_stats();
  EXPECT_GT(stats.echo_sent, 10u);
  // The probe sent right at the deadline may still be in flight.
  EXPECT_GE(stats.echo_replies + 1, stats.echo_sent);
  EXPECT_EQ(stats.echo_misses, 0u);
  EXPECT_EQ(stats.disconnects, 0u);
}

TEST(Failover, FailSecureKeepsFlowsAndDropsPacketIns) {
  Rig rig(3, probing(FailoverSpec::Mode::kFailSecure));
  rig.ctrl.fault_crash();
  rig.network.run_until(10 * kMs);
  EXPECT_FALSE(rig.sw->control_connected());
  EXPECT_EQ(rig.sw->failover_stats().disconnects, 1u);
  EXPECT_GE(rig.sw->failover_stats().echo_misses, 3u);

  // Installed flows keep forwarding.
  const std::uint64_t before = rig.hosts[1]->counters().rx_udp;
  rig.stream(0, 1, 10);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, before + 10);

  // Table-miss punts are suppressed, not queued.
  const std::uint64_t ctrl_packet_ins = rig.ctrl.stats().packet_ins;
  rig.hosts[0]->send_udp_stream(host_mac(77), host_ip(77), 5, 64, 10'000);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_GE(rig.sw->failover_stats().packet_ins_dropped, 5u);
  EXPECT_EQ(rig.ctrl.stats().packet_ins, ctrl_packet_ins);

  // Heal: supervised restart -> reconnect handshake -> full resync.
  rig.ctrl.fault_restart();
  rig.network.run_until(rig.network.now() + 30 * kMs);
  const auto& stats = rig.sw->failover_stats();
  EXPECT_TRUE(rig.sw->control_connected());
  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_EQ(stats.resyncs, 1u);
  EXPECT_EQ(stats.flows_reinstalled, rig.rule_count);
  EXPECT_EQ(rig.session->resyncs(), 1u);
  EXPECT_GT(stats.degraded_ns, 0);

  // Punts reach the controller again.
  rig.hosts[0]->send_udp_stream(host_mac(77), host_ip(77), 3, 64, 10'000);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_GT(rig.ctrl.stats().packet_ins, ctrl_packet_ins);
}

TEST(Failover, FailStandaloneBridgesWithMacLearning) {
  // No L2 rules: while connected, host traffic is punt-and-drop, so
  // any delivery below is the standalone datapath's doing.
  Rig rig(3, probing(FailoverSpec::Mode::kFailStandalone), /*install_l2=*/false);
  const std::uint64_t before = rig.hosts[1]->counters().rx_udp;
  rig.stream(0, 1, 5);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, before);  // punted, not delivered

  rig.ctrl.fault_crash();
  rig.network.run_until(rig.network.now() + 10 * kMs);
  ASSERT_FALSE(rig.sw->control_connected());

  // Unknown destination floods...
  rig.stream(0, 1, 5);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, before + 5);
  const auto& stats = rig.sw->failover_stats();
  EXPECT_GE(stats.standalone_packets, 5u);
  EXPECT_GE(stats.standalone_floods, 5u);
  EXPECT_GT(rig.sw->standalone_macs().size(), 0u);

  // ...and the reverse direction is forwarded, not flooded (h0 was
  // learned from its own frames).
  const std::uint64_t floods = stats.standalone_floods;
  const std::uint64_t h2_rx = rig.hosts[2]->counters().rx_total;
  rig.stream(1, 0, 5);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_EQ(rig.sw->failover_stats().standalone_floods, floods);
  EXPECT_EQ(rig.hosts[2]->counters().rx_total, h2_rx);

  // Healing flushes the interim stations.
  rig.ctrl.fault_restart();
  rig.network.run_until(rig.network.now() + 30 * kMs);
  EXPECT_TRUE(rig.sw->control_connected());
  EXPECT_EQ(rig.sw->standalone_macs().size(), 0u);
}

TEST(Failover, ReconnectBackoffIsCappedExponential) {
  Rig rig(2, probing(FailoverSpec::Mode::kFailSecure));
  rig.ctrl.fault_crash();
  rig.network.run_until(rig.network.now() + 200 * kMs);
  const auto& stats = rig.sw->failover_stats();
  EXPECT_EQ(stats.disconnects, 1u);
  EXPECT_EQ(stats.reconnects, 0u);
  // ~197 ms of retrying: pure 1 ms pacing would mean ~200 attempts,
  // the 8 ms cap (plus up to 25% jitter) bounds it near 25.
  EXPECT_GE(stats.reconnect_attempts, 10u);
  EXPECT_LE(stats.reconnect_attempts, 60u);
  // Everything sent at a dead controller is attributed, not lost.
  EXPECT_GT(rig.channel->to_controller().dropped_no_handler, 0u);

  rig.ctrl.fault_restart();
  rig.network.run_until(rig.network.now() + 30 * kMs);
  EXPECT_EQ(rig.sw->failover_stats().reconnects, 1u);
  EXPECT_TRUE(rig.sw->control_connected());
}

TEST(Failover, SwitchCrashWipesStateAndResyncRestores) {
  Rig rig(2, probing(FailoverSpec::Mode::kFailSecure));
  ASSERT_EQ(rig.sw->pipeline().table(0).entries().size(), rig.rule_count);
  rig.sw->fault_crash();
  EXPECT_TRUE(rig.sw->restarting());
  EXPECT_TRUE(rig.sw->pipeline().table(0).entries().empty());

  // A rebooting box drops ingress on the floor.
  rig.stream(0, 1, 5);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_GE(rig.sw->failover_stats().dropped_restarting, 5u);

  rig.sw->fault_restart();
  rig.network.run_until(rig.network.now() + 30 * kMs);
  const auto& stats = rig.sw->failover_stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_TRUE(rig.sw->control_connected());
  EXPECT_GE(stats.resyncs, 1u);
  EXPECT_EQ(rig.sw->pipeline().table(0).entries().size(), rig.rule_count);
}

TEST(ControlChannelFailable, AttributesEveryLoss) {
  sim::Engine engine;
  ControlChannel channel(engine);

  // No handler registered: delivery is counted, not silently dropped.
  channel.send_to_switch(openflow::HelloMsg{});
  engine.run();
  EXPECT_EQ(channel.to_switch().sent, 1u);
  EXPECT_EQ(channel.to_switch().delivered, 0u);
  EXPECT_EQ(channel.to_switch().dropped_no_handler, 1u);

  std::uint64_t received = 0;
  channel.set_switch_handler([&](openflow::Message&&) { ++received; });

  // Down at send time.
  channel.set_up(false);
  channel.send_to_switch(openflow::HelloMsg{});
  engine.run();
  EXPECT_EQ(channel.to_switch().dropped_down, 1u);

  // Down at delivery time (in flight when the partition hit).
  channel.set_up(true);
  channel.send_to_switch(openflow::HelloMsg{});
  channel.set_up(false);
  engine.run();
  EXPECT_EQ(channel.to_switch().dropped_down, 2u);
  channel.set_up(true);

  // Random loss draws only when impaired.
  channel.set_impairment({}, openflow::ChannelImpairment{1.0, 0});
  for (int i = 0; i < 5; ++i) channel.send_to_switch(openflow::HelloMsg{});
  engine.run();
  EXPECT_EQ(channel.to_switch().dropped_loss, 5u);
  channel.set_impairment({}, {});

  channel.send_to_switch(openflow::HelloMsg{});
  engine.run();
  EXPECT_EQ(received, 1u);
  const auto& stats = channel.to_switch();
  EXPECT_EQ(stats.sent,
            stats.delivered + stats.dropped_down + stats.dropped_loss + stats.dropped_no_handler);
}

TEST(ControlChannelFailable, MinGapSerializesDeliveries) {
  sim::Engine engine;
  ControlChannel channel(engine);
  channel.set_min_gap(1'000);
  std::vector<sim::SimNanos> deliveries;
  channel.set_switch_handler([&](openflow::Message&&) { deliveries.push_back(engine.now()); });
  for (int i = 0; i < 3; ++i) channel.send_to_switch(openflow::HelloMsg{});
  engine.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], channel.latency());
  EXPECT_EQ(deliveries[1], channel.latency() + 1'000);
  EXPECT_EQ(deliveries[2], channel.latency() + 2'000);
}

TEST(LegacyLinkDown, FlushesMacsLearnedOnPort) {
  sim::Network network;
  legacy::SwitchConfig config;
  config.hostname = "flush-test";
  for (int port = 1; port <= 3; ++port) config.ports[port] = legacy::PortConfig{};
  auto& device = network.add_node<legacy::LegacySwitch>("legacy", config);
  std::vector<sim::Host*> hosts;
  for (int i = 0; i < 3; ++i) {
    sim::Host& host = network.add_host("h" + std::to_string(i), host_mac(i), host_ip(i));
    network.connect(host, 0, device, static_cast<std::size_t>(i), sim::LinkSpec::gbps(1));
    hosts.push_back(&host);
  }
  for (int i = 0; i < 3; ++i)
    hosts[static_cast<std::size_t>(i)]->send_udp_stream(host_mac((i + 1) % 3),
                                                        host_ip((i + 1) % 3), 1, 64, 0);
  network.run();
  ASSERT_EQ(device.mac_table().size(), 3u);

  // Cut h0's cable: both directions of the duplex pair go down; the
  // switch flushes the FDB entry learned on that port exactly once.
  for (sim::Channel* channel : network.find_channels("h0")) channel->set_up(false);
  EXPECT_EQ(device.counters().link_down_flushes, 1u);
  EXPECT_EQ(device.mac_table().size(), 2u);

  // Frames toward the dead link are attributed to the downed link, not
  // to queue overflow.
  hosts[1]->send_udp_stream(host_mac(0), host_ip(0), 4, 64, 10'000);
  network.run();
  std::uint64_t down_drops = 0;
  std::uint64_t overflow_drops = 0;
  for (sim::Channel* channel : network.find_channels("h0")) {
    down_drops += channel->drops_down();
    overflow_drops += channel->drops_overflow();
  }
  EXPECT_GE(down_drops, 4u);
  EXPECT_EQ(overflow_drops, 0u);
}

}  // namespace

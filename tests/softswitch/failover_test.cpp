// Controller-loss handling on the software switch: liveness probing,
// fail-secure vs fail-standalone degraded modes, backoff reconnect,
// full-state resync — plus the failable ControlChannel's drop
// attribution and the legacy switch's link-down MAC flush.
//
// Every test drives the engine with run_until: an armed liveness probe
// rescheudles itself forever, so run() would never return.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "controller/apps/static_flows.hpp"
#include "controller/controller.hpp"
#include "legacy/legacy_switch.hpp"
#include "net/build.hpp"
#include "openflow/channel.hpp"
#include "sim/network.hpp"
#include "sim/witness.hpp"
#include "softswitch/replication.hpp"
#include "softswitch/soft_switch.hpp"

namespace {

using namespace harmless;
using openflow::ControlChannel;
using softswitch::FailoverSpec;
using softswitch::SoftSwitch;

constexpr sim::SimNanos kMs = 1'000'000;

net::MacAddr host_mac(int index) {
  return net::MacAddr::from_u64(0x020000000001ULL + static_cast<std::uint64_t>(index));
}
net::Ipv4Addr host_ip(int index) {
  return net::Ipv4Addr(0x0a000001u + static_cast<std::uint32_t>(index));
}

openflow::FlowModMsg l2_rule(int host_index) {
  openflow::FlowModMsg mod;
  mod.table_id = 0;
  mod.priority = 10;
  mod.match.eth_dst(host_mac(host_index));
  mod.instructions =
      openflow::apply({openflow::output(static_cast<std::uint32_t>(host_index + 1))});
  return mod;
}

openflow::FlowModMsg miss_to_controller() {
  openflow::FlowModMsg mod;
  mod.table_id = 0;
  mod.priority = 0;
  mod.instructions = openflow::apply({openflow::to_controller()});
  return mod;
}

/// N hosts on one controller-managed soft switch; the controller's
/// StaticFlowApp programs one exact-match L2 rule per host plus a
/// table-miss punt, so on_reconnect re-installs the same state.
struct Rig {
  sim::Network network;
  SoftSwitch* sw = nullptr;
  std::vector<sim::Host*> hosts;
  std::unique_ptr<ControlChannel> channel;
  controller::Controller ctrl;
  controller::Session* session = nullptr;
  std::size_t rule_count = 0;

  explicit Rig(int host_count, const FailoverSpec& spec, bool install_l2 = true) {
    sw = &network.add_node<SoftSwitch>("sw", 0xA5, static_cast<std::size_t>(host_count),
                                       /*table_count=*/1);
    for (int i = 0; i < host_count; ++i) {
      sim::Host& host = network.add_host("h" + std::to_string(i), host_mac(i), host_ip(i));
      network.connect(host, 0, *sw, static_cast<std::size_t>(i), sim::LinkSpec::gbps(10));
      hosts.push_back(&host);
    }
    channel = std::make_unique<ControlChannel>(network.engine());
    sw->attach_channel(*channel);
    sw->set_failover(spec);
    auto& app = ctrl.add_app<controller::StaticFlowApp>();
    if (install_l2) {
      for (int i = 0; i < host_count; ++i) app.flow(l2_rule(i));
      rule_count += static_cast<std::size_t>(host_count);
    }
    app.flow(miss_to_controller());
    ++rule_count;
    session = &ctrl.connect(*channel, "sw");
    network.run_until(2 * kMs);  // handshake + installs
  }

  void stream(int from, int to, std::size_t count, sim::SimNanos interval = 10'000) {
    hosts[static_cast<std::size_t>(from)]->send_udp_stream(
        hosts[static_cast<std::size_t>(to)]->mac(), hosts[static_cast<std::size_t>(to)]->ip(),
        count, 64, interval);
  }
};

FailoverSpec probing(FailoverSpec::Mode mode) {
  FailoverSpec spec;
  spec.mode = mode;
  spec.echo_interval_ns = 500'000;  // 500 us probes -> ~1.5 ms detection
  spec.echo_miss_threshold = 3;
  return spec;
}

TEST(Failover, HandshakeInstallsAndProbesStayHealthy) {
  Rig rig(2, probing(FailoverSpec::Mode::kFailSecure));
  EXPECT_TRUE(rig.sw->control_connected());
  EXPECT_EQ(rig.sw->pipeline().table(0).entries().size(), rig.rule_count);
  rig.network.run_until(20 * kMs);
  const auto& stats = rig.sw->failover_stats();
  EXPECT_GT(stats.echo_sent, 10u);
  // The probe sent right at the deadline may still be in flight.
  EXPECT_GE(stats.echo_replies + 1, stats.echo_sent);
  EXPECT_EQ(stats.echo_misses, 0u);
  EXPECT_EQ(stats.disconnects, 0u);
}

TEST(Failover, FailSecureKeepsFlowsAndDropsPacketIns) {
  Rig rig(3, probing(FailoverSpec::Mode::kFailSecure));
  rig.ctrl.fault_crash();
  rig.network.run_until(10 * kMs);
  EXPECT_FALSE(rig.sw->control_connected());
  EXPECT_EQ(rig.sw->failover_stats().disconnects, 1u);
  EXPECT_GE(rig.sw->failover_stats().echo_misses, 3u);

  // Installed flows keep forwarding.
  const std::uint64_t before = rig.hosts[1]->counters().rx_udp;
  rig.stream(0, 1, 10);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, before + 10);

  // Table-miss punts are suppressed, not queued.
  const std::uint64_t ctrl_packet_ins = rig.ctrl.stats().packet_ins;
  rig.hosts[0]->send_udp_stream(host_mac(77), host_ip(77), 5, 64, 10'000);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_GE(rig.sw->failover_stats().packet_ins_dropped, 5u);
  EXPECT_EQ(rig.ctrl.stats().packet_ins, ctrl_packet_ins);

  // Heal: supervised restart -> reconnect handshake -> full resync.
  rig.ctrl.fault_restart();
  rig.network.run_until(rig.network.now() + 30 * kMs);
  const auto& stats = rig.sw->failover_stats();
  EXPECT_TRUE(rig.sw->control_connected());
  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_EQ(stats.resyncs, 1u);
  EXPECT_EQ(stats.flows_reinstalled, rig.rule_count);
  EXPECT_EQ(rig.session->resyncs(), 1u);
  EXPECT_GT(stats.degraded_ns, 0);

  // Punts reach the controller again.
  rig.hosts[0]->send_udp_stream(host_mac(77), host_ip(77), 3, 64, 10'000);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_GT(rig.ctrl.stats().packet_ins, ctrl_packet_ins);
}

TEST(Failover, FailStandaloneBridgesWithMacLearning) {
  // No L2 rules: while connected, host traffic is punt-and-drop, so
  // any delivery below is the standalone datapath's doing.
  Rig rig(3, probing(FailoverSpec::Mode::kFailStandalone), /*install_l2=*/false);
  const std::uint64_t before = rig.hosts[1]->counters().rx_udp;
  rig.stream(0, 1, 5);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, before);  // punted, not delivered

  rig.ctrl.fault_crash();
  rig.network.run_until(rig.network.now() + 10 * kMs);
  ASSERT_FALSE(rig.sw->control_connected());

  // Unknown destination floods...
  rig.stream(0, 1, 5);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, before + 5);
  const auto& stats = rig.sw->failover_stats();
  EXPECT_GE(stats.standalone_packets, 5u);
  EXPECT_GE(stats.standalone_floods, 5u);
  EXPECT_GT(rig.sw->standalone_macs().size(), 0u);

  // ...and the reverse direction is forwarded, not flooded (h0 was
  // learned from its own frames).
  const std::uint64_t floods = stats.standalone_floods;
  const std::uint64_t h2_rx = rig.hosts[2]->counters().rx_total;
  rig.stream(1, 0, 5);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_EQ(rig.sw->failover_stats().standalone_floods, floods);
  EXPECT_EQ(rig.hosts[2]->counters().rx_total, h2_rx);

  // Healing flushes the interim stations.
  rig.ctrl.fault_restart();
  rig.network.run_until(rig.network.now() + 30 * kMs);
  EXPECT_TRUE(rig.sw->control_connected());
  EXPECT_EQ(rig.sw->standalone_macs().size(), 0u);
}

TEST(Failover, ReconnectBackoffIsCappedExponential) {
  Rig rig(2, probing(FailoverSpec::Mode::kFailSecure));
  rig.ctrl.fault_crash();
  rig.network.run_until(rig.network.now() + 200 * kMs);
  const auto& stats = rig.sw->failover_stats();
  EXPECT_EQ(stats.disconnects, 1u);
  EXPECT_EQ(stats.reconnects, 0u);
  // ~197 ms of retrying: pure 1 ms pacing would mean ~200 attempts,
  // the 8 ms cap (plus up to 25% jitter) bounds it near 25.
  EXPECT_GE(stats.reconnect_attempts, 10u);
  EXPECT_LE(stats.reconnect_attempts, 60u);
  // Everything sent at a dead controller is attributed, not lost.
  EXPECT_GT(rig.channel->to_controller().dropped_no_handler, 0u);

  rig.ctrl.fault_restart();
  rig.network.run_until(rig.network.now() + 30 * kMs);
  EXPECT_EQ(rig.sw->failover_stats().reconnects, 1u);
  EXPECT_TRUE(rig.sw->control_connected());
}

TEST(Failover, SwitchCrashWipesStateAndResyncRestores) {
  Rig rig(2, probing(FailoverSpec::Mode::kFailSecure));
  ASSERT_EQ(rig.sw->pipeline().table(0).entries().size(), rig.rule_count);
  rig.sw->fault_crash();
  EXPECT_TRUE(rig.sw->restarting());
  EXPECT_TRUE(rig.sw->pipeline().table(0).entries().empty());

  // A rebooting box drops ingress on the floor.
  rig.stream(0, 1, 5);
  rig.network.run_until(rig.network.now() + 5 * kMs);
  EXPECT_GE(rig.sw->failover_stats().dropped_restarting, 5u);

  rig.sw->fault_restart();
  rig.network.run_until(rig.network.now() + 30 * kMs);
  const auto& stats = rig.sw->failover_stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_TRUE(rig.sw->control_connected());
  EXPECT_GE(stats.resyncs, 1u);
  EXPECT_EQ(rig.sw->pipeline().table(0).entries().size(), rig.rule_count);
}

TEST(ControlChannelFailable, AttributesEveryLoss) {
  sim::Engine engine;
  ControlChannel channel(engine);

  // No handler registered: delivery is counted, not silently dropped.
  channel.send_to_switch(openflow::HelloMsg{});
  engine.run();
  EXPECT_EQ(channel.to_switch().sent, 1u);
  EXPECT_EQ(channel.to_switch().delivered, 0u);
  EXPECT_EQ(channel.to_switch().dropped_no_handler, 1u);

  std::uint64_t received = 0;
  channel.set_switch_handler([&](openflow::Message&&) { ++received; });

  // Down at send time.
  channel.set_up(false);
  channel.send_to_switch(openflow::HelloMsg{});
  engine.run();
  EXPECT_EQ(channel.to_switch().dropped_down, 1u);

  // Down at delivery time (in flight when the partition hit).
  channel.set_up(true);
  channel.send_to_switch(openflow::HelloMsg{});
  channel.set_up(false);
  engine.run();
  EXPECT_EQ(channel.to_switch().dropped_down, 2u);
  channel.set_up(true);

  // Random loss draws only when impaired.
  channel.set_impairment({}, openflow::ChannelImpairment{1.0, 0});
  for (int i = 0; i < 5; ++i) channel.send_to_switch(openflow::HelloMsg{});
  engine.run();
  EXPECT_EQ(channel.to_switch().dropped_loss, 5u);
  channel.set_impairment({}, {});

  channel.send_to_switch(openflow::HelloMsg{});
  engine.run();
  EXPECT_EQ(received, 1u);
  const auto& stats = channel.to_switch();
  EXPECT_EQ(stats.sent,
            stats.delivered + stats.dropped_down + stats.dropped_loss + stats.dropped_no_handler);
}

TEST(ControlChannelFailable, MinGapSerializesDeliveries) {
  sim::Engine engine;
  ControlChannel channel(engine);
  channel.set_min_gap(1'000);
  std::vector<sim::SimNanos> deliveries;
  channel.set_switch_handler([&](openflow::Message&&) { deliveries.push_back(engine.now()); });
  for (int i = 0; i < 3; ++i) channel.send_to_switch(openflow::HelloMsg{});
  engine.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], channel.latency());
  EXPECT_EQ(deliveries[1], channel.latency() + 1'000);
  EXPECT_EQ(deliveries[2], channel.latency() + 2'000);
}

// ---- stateful HA: checkpoint/restore and active-standby (PR 9) ----

/// Stateful-firewall rule set: only tracked connections pass. A
/// mid-stream segment with no conntrack entry classifies INVALID and
/// falls through to the priority-0 drop — which is exactly what makes
/// established-flow survival observable: an amnesiac restart drops the
/// flow's ACKs, a restored one forwards them.
std::vector<openflow::FlowModMsg> firewall_rules() {
  std::vector<openflow::FlowModMsg> rules;
  for (int dir = 0; dir < 2; ++dir) {
    openflow::FlowModMsg est;
    est.table_id = 0;
    est.priority = 30;
    est.match.in_port(static_cast<std::uint32_t>(dir + 1)).ct_established();
    est.instructions =
        openflow::apply({openflow::ct_commit(), openflow::output(dir == 0 ? 2u : 1u)});
    rules.push_back(est);
  }
  openflow::FlowModMsg open;
  open.table_id = 0;
  open.priority = 20;
  open.match.in_port(1).ct_new();
  open.instructions = openflow::apply({openflow::ct_commit(), openflow::output(2)});
  rules.push_back(open);
  openflow::FlowModMsg drop;
  drop.table_id = 0;
  drop.priority = 0;
  rules.push_back(drop);
  return rules;
}

/// Two hosts through one ct-enabled, controller-managed firewall
/// switch (rules re-installed by resync after any crash).
struct CtRig {
  sim::Network network;
  SoftSwitch* sw = nullptr;
  sim::Host* a = nullptr;
  sim::Host* b = nullptr;
  std::unique_ptr<ControlChannel> channel;
  controller::Controller ctrl;
  controller::Session* session = nullptr;
  net::FlowKey flow;          // a -> b
  net::FlowKey reply_flow;    // b -> a

  explicit CtRig(const FailoverSpec& spec) {
    sw = &network.add_node<SoftSwitch>("fw", 0xA5, 2, /*table_count=*/1);
    sw->enable_conntrack(openflow::CtConfig{});
    a = &network.add_host("a", host_mac(0), host_ip(0));
    b = &network.add_host("b", host_mac(1), host_ip(1));
    network.connect(*a, 0, *sw, 0, sim::LinkSpec::gbps(10));
    network.connect(*b, 0, *sw, 1, sim::LinkSpec::gbps(10));
    channel = std::make_unique<ControlChannel>(network.engine());
    sw->attach_channel(*channel);
    sw->set_failover(spec);
    auto& app = ctrl.add_app<controller::StaticFlowApp>();
    for (const openflow::FlowModMsg& rule : firewall_rules()) app.flow(rule);
    session = &ctrl.connect(*channel, "fw");
    flow = net::FlowKey{a->mac(), b->mac(), a->ip(), b->ip(), 40000, 80};
    reply_flow = net::FlowKey{b->mac(), a->mac(), b->ip(), a->ip(), 80, 40000};
    network.run_until(2 * kMs);
  }

  /// Three-way-handshake the flow through the datapath; both peers see
  /// each other's segment and the tracker holds one ESTABLISHED entry.
  void establish() {
    a->send(net::make_tcp(flow, net::kTcpSyn));
    network.run_until(network.now() + kMs);
    b->send(net::make_tcp(reply_flow, net::kTcpSyn | net::kTcpAck));
    network.run_until(network.now() + kMs);
  }
};

FailoverSpec checkpointing_spec(sim::SimNanos interval) {
  FailoverSpec spec = probing(FailoverSpec::Mode::kFailSecure);
  spec.checkpoint_interval_ns = interval;
  return spec;
}

TEST(StatefulHa, CheckpointRestoreSurvivesSwitchCrash) {
  CtRig rig(checkpointing_spec(kMs));
  rig.establish();
  ASSERT_EQ(rig.b->counters().rx_tcp, 1u);  // SYN passed the ct_new rule
  ASSERT_EQ(rig.a->counters().rx_tcp, 1u);  // SYN|ACK passed ct_established
  ASSERT_EQ(rig.sw->pipeline().conntrack(0).size(), 1u);

  // The checkpoint timer (armed by the commits) fires within one
  // interval and images the established entry.
  rig.network.run_until(rig.network.now() + 3 * kMs);
  EXPECT_GE(rig.sw->failover_stats().checkpoints, 1u);

  rig.sw->fault_crash();
  EXPECT_EQ(rig.sw->pipeline().conntrack(0).size(), 0u);  // volatile state gone
  rig.sw->fault_restart();
  // The table is rebuilt from the checkpoint before resync completes.
  EXPECT_EQ(rig.sw->failover_stats().ct_restored, 1u);
  EXPECT_EQ(rig.sw->pipeline().conntrack(0).size(), 1u);
  rig.network.run_until(rig.network.now() + 30 * kMs);
  ASSERT_TRUE(rig.sw->control_connected());

  // Switch side: the restored state made this a warm resync (no
  // flow-cache warm-up governor). Controller side: its audit still saw
  // an empty flow table (the crash wiped rules, not connections) so it
  // counts the same resync as cold — the two views are independent.
  EXPECT_EQ(rig.sw->failover_stats().warm_resyncs, 1u);
  EXPECT_GE(rig.session->cold_resyncs(), 1u);

  // Mid-stream ACKs classify ESTABLISHED off the restored entry and
  // keep flowing: the connection survived the reboot.
  const std::uint64_t before = rig.b->counters().rx_tcp;
  for (int i = 0; i < 5; ++i) {
    rig.a->send(net::make_tcp(rig.flow, net::kTcpAck));
    rig.network.run_until(rig.network.now() + 100'000);
  }
  EXPECT_EQ(rig.b->counters().rx_tcp, before + 5);
}

TEST(StatefulHa, AmnesiacRestartDropsEstablishedFlow) {
  // Checkpointing off: the same crash kills the connection for good.
  CtRig rig(probing(FailoverSpec::Mode::kFailSecure));
  rig.establish();
  ASSERT_EQ(rig.b->counters().rx_tcp, 1u);

  rig.sw->fault_crash();
  rig.sw->fault_restart();
  EXPECT_EQ(rig.sw->failover_stats().ct_restored, 0u);
  EXPECT_EQ(rig.sw->failover_stats().warm_resyncs, 0u);
  rig.network.run_until(rig.network.now() + 30 * kMs);
  ASSERT_TRUE(rig.sw->control_connected());

  // Mid-stream ACKs are INVALID (no entry): only the drop rule
  // matches. Zero established goodput through the restart.
  const std::uint64_t before = rig.b->counters().rx_tcp;
  for (int i = 0; i < 5; ++i) {
    rig.a->send(net::make_tcp(rig.flow, net::kTcpAck));
    rig.network.run_until(rig.network.now() + 100'000);
  }
  EXPECT_EQ(rig.b->counters().rx_tcp, before);

  // But the firewall itself still works: a fresh handshake passes.
  rig.establish();
  EXPECT_GT(rig.b->counters().rx_tcp, before);
}

TEST(StatefulHa, ControllerCrashResyncAuditsWarm) {
  // A controller crash leaves the datapath's flow tables intact, so
  // the resync audit finds them and counts the resync warm.
  CtRig rig(probing(FailoverSpec::Mode::kFailSecure));
  rig.ctrl.fault_crash();
  rig.network.run_until(rig.network.now() + 10 * kMs);
  ASSERT_FALSE(rig.sw->control_connected());
  rig.ctrl.fault_restart();
  rig.network.run_until(rig.network.now() + 30 * kMs);
  ASSERT_TRUE(rig.sw->control_connected());
  EXPECT_EQ(rig.session->warm_resyncs(), 1u);
  EXPECT_EQ(rig.session->cold_resyncs(), 0u);
  EXPECT_EQ(rig.ctrl.stats().warm_resyncs, 1u);
}

TEST(StatefulHa, StandbyTakeoverPreservesEstablishedState) {
  sim::Network network;
  auto& act = network.add_node<SoftSwitch>("act", 0xA1, 2, /*table_count=*/1);
  auto& stb = network.add_node<SoftSwitch>("stb", 0xA2, 2, /*table_count=*/1);
  act.enable_conntrack(openflow::CtConfig{});
  stb.enable_conntrack(openflow::CtConfig{});
  for (const openflow::FlowModMsg& rule : firewall_rules()) {
    act.install(rule).check();
    stb.install(rule).check();
  }
  sim::Host& a = network.add_host("a", host_mac(0), host_ip(0));
  sim::Host& b = network.add_host("b", host_mac(1), host_ip(1));
  network.connect(a, 0, act, 0, sim::LinkSpec::gbps(10));
  network.connect(b, 0, act, 1, sim::LinkSpec::gbps(10));

  softswitch::ReplicationChannel repl(network.engine());
  act.enable_ha_active(repl);
  stb.enable_ha_standby(repl);
  bool resteered = false;
  stb.set_ha_takeover_handler([&] { resteered = true; });

  // Establish through the active; the deltas ride the sync stream onto
  // the standby's shards.
  const net::FlowKey flow{a.mac(), b.mac(), a.ip(), b.ip(), 40000, 80};
  const net::FlowKey reply{b.mac(), a.mac(), b.ip(), a.ip(), 80, 40000};
  a.send(net::make_tcp(flow, net::kTcpSyn));
  network.run_until(kMs);
  b.send(net::make_tcp(reply, net::kTcpSyn | net::kTcpAck));
  network.run_until(2 * kMs);
  EXPECT_GE(repl.stats().deltas_delivered, 2u);  // commit + established
  ASSERT_EQ(stb.pipeline().conntrack(0).size(), 1u);
  EXPECT_FALSE(stb.ha_promoted());

  // Crash the active: heartbeats fall silent, the standby's monitor
  // trips after the miss threshold and it promotes itself.
  act.fault_crash();
  const sim::SimNanos crashed_at = network.now();
  network.run_until(crashed_at + 10 * kMs);
  EXPECT_TRUE(stb.ha_promoted());
  EXPECT_EQ(stb.failover_stats().takeovers, 1u);
  EXPECT_TRUE(resteered);

  // The replicated entry survived takeover demoted-but-ESTABLISHED:
  // the flow keeps its fast path, but a stale replica idles out on the
  // transient budget unless real traffic re-confirms it.
  const auto entries = stb.pipeline().conntrack(0).snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(entries[0].confirmed);
  EXPECT_TRUE(entries[0].seen_reply);
  const openflow::CtTuple orig{host_ip(0).value(), host_ip(1).value(), 40000, 80, 6};
  EXPECT_EQ(stb.pipeline().conntrack(0).classify(orig, net::kTcpAck, network.now()),
            openflow::kCtTracked | openflow::kCtEstablished);

  // Takeover is idempotent and one-way.
  stb.ha_takeover();
  EXPECT_EQ(stb.failover_stats().takeovers, 1u);
}

TEST(ReplicationChannelFailable, AttributesEveryLoss) {
  sim::Engine engine;
  softswitch::ReplicationSpec spec;
  spec.batch_interval_ns = 0;  // send-now: one batch per publish
  softswitch::ReplicationChannel repl(engine, spec);
  const openflow::CtDelta delta{};

  // No handler: the batch is counted delivered, the deltas are not —
  // nothing vanishes silently.
  repl.publish(0, delta);
  engine.run();
  EXPECT_EQ(repl.stats().batches_sent, 1u);
  EXPECT_EQ(repl.stats().batches_delivered, 1u);
  EXPECT_EQ(repl.stats().deltas_delivered, 0u);

  std::size_t applied = 0;
  repl.set_delta_handler([&](const softswitch::ReplicationRecord&) { ++applied; });

  // Down at send time.
  repl.set_up(false);
  repl.publish(0, delta);
  engine.run();
  EXPECT_EQ(repl.stats().batches_dropped_down, 1u);

  // Down at delivery time (in flight when the partition hit).
  repl.set_up(true);
  repl.publish(0, delta);
  repl.set_up(false);
  engine.run();
  EXPECT_EQ(repl.stats().batches_dropped_down, 2u);
  repl.set_up(true);

  // Impairment loss draws only when configured.
  repl.set_loss(1.0);
  for (int i = 0; i < 5; ++i) repl.publish(0, delta);
  engine.run();
  EXPECT_EQ(repl.stats().batches_dropped_loss, 5u);
  repl.set_loss(0.0);

  repl.publish(0, delta);
  engine.run();
  EXPECT_EQ(applied, 1u);
  const auto& stats = repl.stats();
  EXPECT_EQ(stats.batches_sent, stats.batches_delivered + stats.batches_dropped_down +
                                    stats.batches_dropped_loss);

  // Heartbeats share the pipe and its fate — but losses land in their
  // own buckets, so a heartbeat-starved standby (liveness signal) is
  // distinguishable from a delta-starved one (state stream).
  repl.publish_heartbeat();
  engine.run();
  EXPECT_EQ(stats.heartbeats_sent, 1u);
  EXPECT_EQ(stats.heartbeats_delivered, 1u);

  repl.set_up(false);
  repl.publish_heartbeat();  // down at send time
  engine.run();
  EXPECT_EQ(stats.heartbeats_dropped_down, 1u);
  repl.set_up(true);
  repl.publish_heartbeat();  // in flight when the partition hits
  repl.set_up(false);
  engine.run();
  EXPECT_EQ(stats.heartbeats_dropped_down, 2u);
  repl.set_up(true);

  repl.set_loss(1.0);
  repl.publish_heartbeat();
  engine.run();
  EXPECT_EQ(stats.heartbeats_dropped_loss, 1u);
  repl.set_loss(0.0);

  // Heartbeat losses never leaked into the batch buckets, and both
  // streams conserve independently.
  EXPECT_EQ(stats.batches_sent, stats.batches_delivered + stats.batches_dropped_down +
                                    stats.batches_dropped_loss);
  EXPECT_EQ(stats.heartbeats_sent, stats.heartbeats_delivered + stats.heartbeats_dropped_down +
                                       stats.heartbeats_dropped_loss);
}

TEST(ReplicationChannelFailable, BatchesCoalesceWithinInterval) {
  sim::Engine engine;
  softswitch::ReplicationSpec spec;
  spec.batch_interval_ns = 100'000;
  spec.latency_ns = 10'000;
  softswitch::ReplicationChannel repl(engine, spec);
  std::vector<sim::SimNanos> arrivals;
  repl.set_delta_handler(
      [&](const softswitch::ReplicationRecord&) { arrivals.push_back(engine.now()); });
  const openflow::CtDelta delta{};
  for (int i = 0; i < 4; ++i) repl.publish(0, delta);
  engine.run();
  // One coalesced batch: all four deltas arrive together at
  // batch_interval + latency.
  EXPECT_EQ(repl.stats().batches_sent, 1u);
  ASSERT_EQ(arrivals.size(), 4u);
  for (const sim::SimNanos at : arrivals) EXPECT_EQ(at, 110'000);
}

// ---- split-brain-safe HA: witness leases, fencing, failback (PR 10) ----

/// SNAT gateway rule set (the conntrack_datapath idiom): outbound TCP
/// is source-translated and committed, reverse traffic follows the
/// stored mapping, everything else drops. NAT allocations are what
/// make split-brain damage concrete — two unfenced actives hand the
/// same external port to different connections.
std::vector<openflow::FlowModMsg> snat_rules(net::MacAddr a_mac, net::MacAddr b_mac) {
  std::vector<openflow::FlowModMsg> rules;
  openflow::FlowModMsg out;
  out.table_id = 0;
  out.priority = 100;
  out.match.in_port(1).eth_type(0x0800).ip_proto(6);
  out.instructions = openflow::apply({openflow::ct_snat(net::Ipv4Addr(192, 0, 2, 1), 50000, 50100),
                                      openflow::set_eth_dst(b_mac), openflow::output(2)});
  rules.push_back(out);
  openflow::FlowModMsg back;
  back.table_id = 0;
  back.priority = 100;
  back.match.in_port(2).eth_type(0x0800).ip_proto(6).ct_tracked();
  back.instructions =
      openflow::apply({openflow::ct_commit(), openflow::set_eth_dst(a_mac), openflow::output(1)});
  rules.push_back(back);
  openflow::FlowModMsg drop;
  drop.table_id = 0;
  drop.priority = 0;
  rules.push_back(drop);
  return rules;
}

TEST(WitnessFencing, StandbyPromotionRequiresLeaseQuorum) {
  sim::Network network;
  auto& act = network.add_node<SoftSwitch>("act", 0xA1, 2, /*table_count=*/1);
  auto& stb = network.add_node<SoftSwitch>("stb", 0xA2, 2, /*table_count=*/1);
  act.enable_conntrack(openflow::CtConfig{});
  stb.enable_conntrack(openflow::CtConfig{});
  softswitch::ReplicationChannel repl(network.engine());
  sim::Witness witness;
  sim::WitnessLink wl_act(network.engine(), witness, 0xA1);
  sim::WitnessLink wl_stb(network.engine(), witness, 0xA2);
  act.set_ha_witness(wl_act);
  stb.set_ha_witness(wl_stb);
  // Witness-attached boxes start fenced: fail closed until a grant.
  EXPECT_TRUE(act.ha_fenced());
  EXPECT_TRUE(stb.ha_fenced());

  act.enable_ha_active(repl);
  stb.enable_ha_standby(repl);
  network.run_until(5 * kMs);
  EXPECT_TRUE(act.ha_unfenced_active());  // first grant landed, epoch 1
  EXPECT_EQ(act.ha_epoch(), 1u);

  // Partition ONLY the replication channel. The standby hears silence —
  // but the witness still hears the active's renewals, so heartbeat
  // evidence alone is not a quorum: every promotion request is denied
  // and nobody double-activates.
  repl.set_up(false);
  network.run_until(network.now() + 20 * kMs);
  EXPECT_FALSE(stb.ha_promoted());
  EXPECT_EQ(stb.failover_stats().takeovers, 0u);
  EXPECT_GE(stb.failover_stats().ha_promotions_denied, 1u);
  EXPECT_GE(witness.stats().denials, 1u);
  EXPECT_TRUE(act.ha_unfenced_active());
  EXPECT_FALSE(stb.ha_unfenced_active());
  EXPECT_EQ(witness.holder(), 0xA1u);
  EXPECT_EQ(witness.epoch(), 1u);  // no holder change, no bump

  // Heal: heartbeats resume, the standby settles back down.
  repl.set_up(true);
  network.run_until(network.now() + 10 * kMs);
  EXPECT_FALSE(stb.ha_promoted());
  EXPECT_TRUE(act.ha_unfenced_active());
}

TEST(WitnessFencing, ActiveSelfFencesWhenWitnessUnreachable) {
  sim::Network network;
  auto& sw = network.add_node<SoftSwitch>("act", 0xA1, 2, /*table_count=*/1);
  sw.enable_conntrack(openflow::CtConfig{});
  for (const openflow::FlowModMsg& rule : firewall_rules()) sw.install(rule).check();
  sim::Host& a = network.add_host("a", host_mac(0), host_ip(0));
  sim::Host& b = network.add_host("b", host_mac(1), host_ip(1));
  network.connect(a, 0, sw, 0, sim::LinkSpec::gbps(10));
  network.connect(b, 0, sw, 1, sim::LinkSpec::gbps(10));
  softswitch::ReplicationChannel repl(network.engine());
  sim::Witness witness;
  sim::WitnessLink link(network.engine(), witness, 0xA1);
  sw.set_ha_witness(link);
  sw.enable_ha_active(repl);

  // Establish one connection while the lease is healthy.
  const net::FlowKey flow{a.mac(), b.mac(), a.ip(), b.ip(), 40000, 80};
  const net::FlowKey reply{b.mac(), a.mac(), b.ip(), a.ip(), 80, 40000};
  network.run_until(kMs);
  ASSERT_FALSE(sw.ha_fenced());
  a.send(net::make_tcp(flow, net::kTcpSyn));
  network.run_until(network.now() + kMs);
  b.send(net::make_tcp(reply, net::kTcpSyn | net::kTcpAck));
  network.run_until(network.now() + kMs);
  ASSERT_EQ(sw.pipeline().conntrack(0).size(), 1u);

  // Cut the witness link: renewals die and the box fences itself at
  // its local lease expiry — before the witness could grant elsewhere.
  link.set_up(false);
  network.run_until(network.now() + 3 * kMs);
  EXPECT_TRUE(sw.ha_fenced());
  EXPECT_GE(sw.failover_stats().ha_fences, 1u);
  EXPECT_FALSE(sw.ha_unfenced_active());

  // Fenced != dead: the established connection keeps its fast path...
  const std::uint64_t before_est = b.counters().rx_tcp;
  a.send(net::make_tcp(flow, net::kTcpAck));
  network.run_until(network.now() + kMs);
  EXPECT_EQ(b.counters().rx_tcp, before_est + 1);

  // ...but no new state is minted: a fresh SYN's commit is refused and
  // the connection table does not grow.
  net::FlowKey fresh = flow;
  fresh.src_port = 41000;
  a.send(net::make_tcp(fresh, net::kTcpSyn));
  network.run_until(network.now() + kMs);
  EXPECT_EQ(sw.pipeline().conntrack(0).size(), 1u);
  EXPECT_GE(sw.pipeline().conntrack(0).stats().fenced_rejects, 1u);

  // Heal: the next renewal (same holder, expiry notwithstanding)
  // re-arms the lease and lifts the fence; commits work again.
  link.set_up(true);
  network.run_until(network.now() + 2 * kMs);
  EXPECT_FALSE(sw.ha_fenced());
  EXPECT_GE(sw.failover_stats().ha_unfences, 1u);
  a.send(net::make_tcp(fresh, net::kTcpSyn));
  network.run_until(network.now() + kMs);
  EXPECT_EQ(sw.pipeline().conntrack(0).size(), 2u);
}

TEST(WitnessFailback, ExActiveRejoinsWarmWithNatBindings) {
  sim::Network network;
  auto& act = network.add_node<SoftSwitch>("act", 0xA1, 2, /*table_count=*/1);
  auto& stb = network.add_node<SoftSwitch>("stb", 0xA2, 2, /*table_count=*/1);
  act.enable_conntrack(openflow::CtConfig{});
  stb.enable_conntrack(openflow::CtConfig{});
  sim::Host& a = network.add_host("a", host_mac(0), host_ip(0));
  sim::Host& b = network.add_host("b", host_mac(1), host_ip(1));
  network.connect(a, 0, act, 0, sim::LinkSpec::gbps(10));
  network.connect(b, 0, act, 1, sim::LinkSpec::gbps(10));
  for (const openflow::FlowModMsg& rule : snat_rules(a.mac(), b.mac())) {
    act.install(rule).check();
    stb.install(rule).check();
  }
  softswitch::ReplicationChannel ab(network.engine());  // act -> stb
  softswitch::ReplicationChannel ba(network.engine());  // stb -> act
  sim::Witness witness;
  sim::WitnessLink wl_act(network.engine(), witness, 0xA1);
  sim::WitnessLink wl_stb(network.engine(), witness, 0xA2);
  act.set_ha_witness(wl_act);
  stb.set_ha_witness(wl_stb);
  act.enable_ha_active(ab, &ba);
  stb.enable_ha_standby(ab, &ba);

  // Two SNATed connections through the active; their deltas — NAT
  // allocations included — ride onto the standby.
  network.run_until(kMs);
  for (int i = 0; i < 2; ++i) {
    const net::FlowKey flow{a.mac(), b.mac(), a.ip(), b.ip(),
                            static_cast<std::uint16_t>(40000 + i), 80};
    a.send(net::make_tcp(flow, net::kTcpSyn));
    network.run_until(network.now() + kMs);
  }
  ASSERT_EQ(act.pipeline().conntrack(0).size(), 2u);
  ASSERT_EQ(stb.pipeline().conntrack(0).size(), 2u);
  std::map<std::uint16_t, std::uint16_t> bindings;  // orig src port -> SNAT port
  for (const openflow::ConnEntry& entry : act.pipeline().conntrack(0).snapshot()) {
    ASSERT_EQ(entry.nat.kind, openflow::CtAction::Nat::kSource);
    bindings[entry.orig.src_port] = entry.nat.port;
  }

  // Crash the active: its lease lapses, the standby wins the next
  // grant under a bumped epoch and takes over.
  act.fault_crash();
  network.run_until(network.now() + 10 * kMs);
  EXPECT_TRUE(stb.ha_promoted());
  EXPECT_TRUE(stb.ha_unfenced_active());
  EXPECT_EQ(stb.ha_epoch(), 2u);

  // Restart the ex-active amnesiac (no checkpointing). The new
  // active's higher epoch demotes it into a fenced standby, and the
  // failback stream rebuilds its tables warm — a role swap, not a
  // wipe-and-pray.
  act.fault_restart();
  ASSERT_EQ(act.pipeline().conntrack(0).size(), 0u);
  network.run_until(network.now() + 10 * kMs);
  EXPECT_EQ(act.ha_role(), SoftSwitch::HaRole::kStandby);
  EXPECT_GE(act.failover_stats().ha_demotions, 1u);
  EXPECT_FALSE(act.ha_unfenced_active());
  EXPECT_TRUE(stb.ha_unfenced_active());
  EXPECT_EQ(act.failover_stats().ha_failbacks, 1u);
  EXPECT_GE(act.failover_stats().ha_failback_entries, 2u);
  EXPECT_EQ(act.ha_epoch(), 2u);

  // Warm: both connections are back with their NAT bindings intact.
  const auto entries = act.pipeline().conntrack(0).snapshot();
  ASSERT_EQ(entries.size(), 2u);
  for (const openflow::ConnEntry& entry : entries) {
    ASSERT_TRUE(bindings.count(entry.orig.src_port));
    EXPECT_EQ(entry.nat.port, bindings[entry.orig.src_port]);
    EXPECT_TRUE(entry.confirmed);
  }

  // At no point do we end with two unfenced actives.
  EXPECT_LE(static_cast<int>(act.ha_unfenced_active()) +
                static_cast<int>(stb.ha_unfenced_active()),
            1);
}

TEST(LegacyLinkDown, FlushesMacsLearnedOnPort) {
  sim::Network network;
  legacy::SwitchConfig config;
  config.hostname = "flush-test";
  for (int port = 1; port <= 3; ++port) config.ports[port] = legacy::PortConfig{};
  auto& device = network.add_node<legacy::LegacySwitch>("legacy", config);
  std::vector<sim::Host*> hosts;
  for (int i = 0; i < 3; ++i) {
    sim::Host& host = network.add_host("h" + std::to_string(i), host_mac(i), host_ip(i));
    network.connect(host, 0, device, static_cast<std::size_t>(i), sim::LinkSpec::gbps(1));
    hosts.push_back(&host);
  }
  for (int i = 0; i < 3; ++i)
    hosts[static_cast<std::size_t>(i)]->send_udp_stream(host_mac((i + 1) % 3),
                                                        host_ip((i + 1) % 3), 1, 64, 0);
  network.run();
  ASSERT_EQ(device.mac_table().size(), 3u);

  // Cut h0's cable: both directions of the duplex pair go down; the
  // switch flushes the FDB entry learned on that port exactly once.
  for (sim::Channel* channel : network.find_channels("h0")) channel->set_up(false);
  EXPECT_EQ(device.counters().link_down_flushes, 1u);
  EXPECT_EQ(device.mac_table().size(), 2u);

  // Frames toward the dead link are attributed to the downed link, not
  // to queue overflow.
  hosts[1]->send_udp_stream(host_mac(0), host_ip(0), 4, 64, 10'000);
  network.run();
  std::uint64_t down_drops = 0;
  std::uint64_t overflow_drops = 0;
  for (sim::Channel* channel : network.find_channels("h0")) {
    down_drops += channel->drops_down();
    overflow_drops += channel->drops_overflow();
  }
  EXPECT_GE(down_drops, 4u);
  EXPECT_EQ(overflow_drops, 0u);
}

}  // namespace

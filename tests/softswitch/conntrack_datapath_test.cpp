// Conntrack on the full SoftSwitch datapath: ct_state-keyed megaflows
// (the NEW->ESTABLISHED transition must never be masked by a cached
// decision), NAT replay through the cache, expiry sweeps on the
// calendar engine, and cost billing.
#include <gtest/gtest.h>

#include "net/build.hpp"
#include "net/l4.hpp"
#include "sim/network.hpp"
#include "softswitch/soft_switch.hpp"

namespace harmless::softswitch {
namespace {

using namespace net;
using namespace openflow;
using sim::LinkSpec;
using sim::Network;

struct Rig {
  Network network;
  SoftSwitch* sw;
  sim::Host* a;
  sim::Host* b;

  explicit Rig(CtConfig config = {}, std::size_t burst_size = 32) {
    sw = &network.add_node<SoftSwitch>("sw", 0xC7, 2, 2, true, true, burst_size);
    sw->enable_conntrack(config);
    a = &network.add_host("a", MacAddr::from_u64(0xA), Ipv4Addr(10, 0, 0, 1));
    b = &network.add_host("b", MacAddr::from_u64(0xB), Ipv4Addr(10, 0, 0, 2));
    network.connect(*a, 0, *sw, 0, LinkSpec::gbps(1));
    network.connect(*b, 0, *sw, 1, LinkSpec::gbps(1));
  }

  /// The stateful-firewall rule shape: a (port 1) may open outward,
  /// b's (port 2) traffic gets in only when ESTABLISHED.
  void install_firewall() {
    FlowModMsg open;
    open.table_id = 0;
    open.priority = 100;
    open.match.in_port(1).eth_type(0x0800).ip_proto(6);
    open.instructions = apply({ct_commit(), output(2)});
    ASSERT_TRUE(sw->install(open).is_ok());

    FlowModMsg established;
    established.table_id = 0;
    established.priority = 100;
    established.match.in_port(2).eth_type(0x0800).ip_proto(6).ct_established();
    established.instructions = apply({ct_commit(), output(1)});
    ASSERT_TRUE(sw->install(established).is_ok());

    FlowModMsg drop;
    drop.table_id = 0;
    drop.priority = 0;
    ASSERT_TRUE(sw->install(drop).is_ok());
  }

  FlowKey forward() const {
    FlowKey key;
    key.eth_src = a->mac();
    key.eth_dst = b->mac();
    key.ip_src = a->ip();
    key.ip_dst = b->ip();
    key.src_port = 40000;
    key.dst_port = 80;
    return key;
  }
  FlowKey reverse() const {
    FlowKey key;
    key.eth_src = b->mac();
    key.eth_dst = a->mac();
    key.ip_src = b->ip();
    key.ip_dst = a->ip();
    key.src_port = 80;
    key.dst_port = 40000;
    return key;
  }
};

TEST(ConntrackDatapath, CachedDecisionNeverMasksStateTransition) {
  Rig rig;
  rig.install_firewall();

  // All phases run inside ONE engine run: connections idle out (and
  // network.run() only returns) once nothing keeps them alive, so any
  // state the later phases depend on must be built while time is still
  // in range. Snapshots are captured by scheduled probes.
  auto& engine = rig.network.engine();
  std::uint64_t rx_after_probes = 99, hits_after_probes = 0;
  std::uint64_t rx_after_reply = 99;
  std::uint64_t rx_after_retry = 99;
  std::uint64_t rx_final = 99, hits_before_repeat = 0, hits_final = 0;

  // Phase 1: b probes twice before any connection exists. The first
  // probe takes the slow path and installs a drop megaflow; the second
  // must be a cache hit on it — the cached decision we then prove gets
  // bypassed, not reused, after the transition.
  engine.schedule_at(0, [&] { rig.b->send(make_tcp(rig.reverse(), kTcpAck)); });
  engine.schedule_at(1'000'000, [&] { rig.b->send(make_tcp(rig.reverse(), kTcpAck)); });
  engine.schedule_at(2'000'000, [&] {
    rx_after_probes = rig.a->counters().rx_tcp;
    hits_after_probes = rig.sw->counters().cache_hits;
  });

  // Phase 2: a opens the connection and b's reply establishes it.
  engine.schedule_at(3'000'000, [&] { rig.a->send(make_tcp(rig.forward(), kTcpSyn)); });
  engine.schedule_at(4'000'000,
                     [&] { rig.b->send(make_tcp(rig.reverse(), kTcpSyn | kTcpAck)); });
  engine.schedule_at(5'000'000, [&] { rx_after_reply = rig.a->counters().rx_tcp; });

  // Phase 3: the same 5-tuple b sent in phase 1 — byte-identical
  // packets — must now be delivered: the prelude stamps a different
  // ct_state, so the drop megaflow cannot match.
  engine.schedule_at(6'000'000, [&] { rig.b->send(make_tcp(rig.reverse(), kTcpAck)); });
  engine.schedule_at(7'000'000, [&] {
    rx_after_retry = rig.a->counters().rx_tcp;
    hits_before_repeat = rig.sw->counters().cache_hits;
  });

  // And the established path itself is cacheable: repeats hit.
  engine.schedule_at(8'000'000, [&] { rig.b->send(make_tcp(rig.reverse(), kTcpAck)); });
  engine.schedule_at(9'000'000, [&] {
    rx_final = rig.a->counters().rx_tcp;
    hits_final = rig.sw->counters().cache_hits;
  });
  rig.network.run();

  EXPECT_EQ(rx_after_probes, 0u);
  EXPECT_GE(hits_after_probes, 1u) << "drop decision was never cached";
  EXPECT_EQ(rx_after_reply, 1u) << "reply direction classified ESTABLISHED must pass";
  EXPECT_EQ(rx_after_retry, 2u)
      << "stale cached drop masked the NEW->ESTABLISHED transition";
  EXPECT_EQ(rx_final, 3u);
  EXPECT_GT(hits_final, hits_before_repeat);
}

TEST(ConntrackDatapath, SnatRewriteReplaysThroughTheCache) {
  Rig rig;
  // a's traffic is source-translated to 192.0.2.1; b replies to the
  // external address and the reverse traversal restores a's address.
  FlowModMsg out;
  out.table_id = 0;
  out.priority = 100;
  out.match.in_port(1).eth_type(0x0800).ip_proto(6);
  out.instructions =
      apply({ct_snat(Ipv4Addr(192, 0, 2, 1), 50000, 50100), set_eth_dst(rig.b->mac()), output(2)});
  ASSERT_TRUE(rig.sw->install(out).is_ok());
  FlowModMsg back;
  back.table_id = 0;
  back.priority = 100;
  back.match.in_port(2).eth_type(0x0800).ip_proto(6).ct_tracked();
  back.instructions = apply({ct_commit(), set_eth_dst(rig.a->mac()), output(1)});
  ASSERT_TRUE(rig.sw->install(back).is_ok());
  FlowModMsg drop;
  drop.table_id = 0;
  drop.priority = 0;
  ASSERT_TRUE(rig.sw->install(drop).is_ok());

  rig.b->set_rx_log_capacity(16);
  auto& engine = rig.network.engine();
  std::uint64_t hits_before = 0, hits_after = 0;
  std::uint16_t external_port = 0;
  engine.schedule_at(0, [&] { rig.a->send(make_tcp(rig.forward(), kTcpSyn)); });
  engine.schedule_at(1'000'000, [&] {
    ASSERT_EQ(rig.b->counters().rx_tcp, 1u);
    const ParsedPacket& first = rig.b->rx_log().back();
    ASSERT_TRUE(first.ipv4);
    EXPECT_EQ(first.ipv4->src, Ipv4Addr(192, 0, 2, 1));
    external_port = first.src_port();
    // Repeat packets replay the rewrite from the cache: same external
    // port, valid checksums (parse would fail otherwise), cache hits.
    hits_before = rig.sw->counters().cache_hits;
    for (int i = 0; i < 3; ++i) rig.a->send(make_tcp(rig.forward(), kTcpAck));
  });
  engine.schedule_at(2'000'000, [&] {
    hits_after = rig.sw->counters().cache_hits;
    // Reply direction un-translates.
    FlowKey reply;
    reply.eth_src = rig.b->mac();
    reply.eth_dst = rig.a->mac();
    reply.ip_src = rig.b->ip();
    reply.ip_dst = Ipv4Addr(192, 0, 2, 1);
    reply.src_port = 80;
    reply.dst_port = external_port;
    rig.b->send(make_tcp(reply, kTcpSyn | kTcpAck));
  });
  rig.network.run();

  EXPECT_GE(external_port, 50000u);
  EXPECT_LE(external_port, 50100u);
  EXPECT_EQ(rig.b->counters().rx_tcp, 4u);
  for (const ParsedPacket& rx : rig.b->rx_log()) {
    ASSERT_TRUE(rx.ipv4);
    EXPECT_EQ(rx.ipv4->src, Ipv4Addr(192, 0, 2, 1));
    EXPECT_EQ(rx.src_port(), external_port) << "NAT mapping not stable across replay";
  }
  EXPECT_GT(hits_after, hits_before);

  ASSERT_EQ(rig.a->counters().rx_tcp, 1u);
  const ParsedPacket& restored = rig.a->rx_log().back();
  ASSERT_TRUE(restored.ipv4);
  EXPECT_EQ(restored.ipv4->dst, rig.a->ip());
  EXPECT_EQ(restored.dst_port(), 40000u);

  const auto counters = rig.sw->counters();
  EXPECT_EQ(counters.ct_nat_allocated, 1u);
  EXPECT_EQ(counters.ct_created, 1u);
}

TEST(ConntrackDatapath, SweepExpiresIdleConnectionsOnTheEngine) {
  CtConfig config;
  config.tcp_established_timeout = 10'000'000;  // 10 ms
  config.tcp_transient_timeout = 10'000'000;
  config.sweep_interval = 1'000'000;
  Rig rig(config);
  rig.install_firewall();

  rig.a->send(make_tcp(rig.forward(), kTcpSyn));
  rig.network.run();  // drains: the sweep runs until the table is empty
  const auto counters = rig.sw->counters();
  EXPECT_EQ(counters.ct_created, 1u);
  EXPECT_EQ(counters.ct_expired, 1u);
  EXPECT_EQ(counters.ct_connections, 0u);
  // The engine drained — the sweep must disarm itself once the table
  // is empty (otherwise network.run() would never have returned).
}

TEST(ConntrackDatapath, CtCostsAreBilled) {
  Rig rig;
  rig.install_firewall();
  rig.a->send(make_tcp(rig.forward(), kTcpSyn));
  rig.network.run();
  const auto counters = rig.sw->counters();
  EXPECT_GE(counters.ct_lookups, 1u);
  EXPECT_EQ(counters.ct_created, 1u);
  // The busy bill must include the ct lookup and commit costs.
  const DatapathCosts costs;
  EXPECT_GT(costs.ct_lookup_ns, 0u);
  EXPECT_GT(costs.ct_commit_ns, 0u);
  EXPECT_GT(rig.sw->core_stats(0).busy_ns, 0);
}

TEST(ConntrackDatapath, DisabledConntrackReportsZeroes) {
  Network network;
  auto& sw = network.add_node<SoftSwitch>("sw", 0xC8, 2);
  auto& a = network.add_host("a", MacAddr::from_u64(0xA), Ipv4Addr(10, 0, 0, 1));
  auto& b = network.add_host("b", MacAddr::from_u64(0xB), Ipv4Addr(10, 0, 0, 2));
  network.connect(a, 0, sw, 0, LinkSpec::gbps(1));
  network.connect(b, 0, sw, 1, LinkSpec::gbps(1));
  FlowModMsg mod;
  mod.table_id = 0;
  mod.priority = 10;
  mod.match.eth_dst(b.mac());
  mod.instructions = apply({output(2)});
  ASSERT_TRUE(sw.install(mod).is_ok());
  FlowKey key;
  key.eth_src = a.mac();
  key.eth_dst = b.mac();
  key.ip_src = a.ip();
  key.ip_dst = b.ip();
  key.src_port = 1;
  key.dst_port = 2;
  a.send(make_tcp(key, kTcpSyn));
  network.run();
  EXPECT_EQ(b.counters().rx_tcp, 1u);
  const auto counters = sw.counters();
  EXPECT_EQ(counters.ct_lookups, 0u);
  EXPECT_EQ(counters.ct_created, 0u);
  EXPECT_EQ(counters.ct_connections, 0u);
}

}  // namespace
}  // namespace harmless::softswitch

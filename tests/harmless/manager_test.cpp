// HarmlessManager end-to-end: discovery through the emulated SNMP
// management plane, config rendering in both vendor dialects, commit,
// verification, fabric bring-up, controller attach, failure paths.
#include <gtest/gtest.h>

#include "controller/apps/learning.hpp"
#include "harmless/manager.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"

namespace harmless::core {
namespace {

using namespace net;
using controller::Controller;
using controller::LearningSwitchApp;
using legacy::LegacySwitch;
using legacy::PortConfig;
using legacy::PortMode;
using legacy::SwitchConfig;
using sim::Host;
using sim::LinkSpec;
using sim::Network;

/// A factory-default 8-port switch: every port access in VLAN 1 —
/// exactly what the Manager is supposed to reconfigure.
SwitchConfig factory_default(int ports = 8) {
  SwitchConfig config;
  config.hostname = "dusty-closet-sw";
  for (int port = 1; port <= ports; ++port)
    config.ports[port] = PortConfig{PortMode::kAccess, 1, {}, std::nullopt, true, ""};
  return config;
}

class ManagerTest : public ::testing::TestWithParam<const char*> {
 protected:
  ManagerTest()
      : device_(network_.add_node<LegacySwitch>("legacy", factory_default())),
        mib_(agent_, device_),
        driver_(agent_, mgmt::make_dialect(GetParam())) {
    // Wire 4 hosts to access ports 1..4 (trunk will be port 8).
    for (int i = 0; i < 4; ++i) {
      Host& host = network_.add_host("h" + std::to_string(i + 1),
                                     MacAddr::from_u64(0x02000000aa01ULL + i),
                                     Ipv4Addr(192, 168, 50, static_cast<std::uint8_t>(i + 1)));
      network_.connect(host, 0, device_, static_cast<std::size_t>(i), LinkSpec::gbps(1));
      hosts_.push_back(&host);
    }
  }

  MigrationRequest request() {
    MigrationRequest req;
    req.access_ports = {1, 2, 3, 4};
    req.trunk_port = 8;
    return req;
  }

  Network network_;
  LegacySwitch& device_;
  mgmt::SnmpAgent agent_;
  mgmt::SwitchMib mib_;
  mgmt::SnmpDriver driver_;
  std::vector<Host*> hosts_;
};

TEST_P(ManagerTest, FullMigrationSucceeds) {
  Controller controller("nox");
  controller.add_app<LearningSwitchApp>();
  HarmlessManager manager(driver_, device_, network_);

  auto [report, deployment] = manager.migrate(request(), controller);
  ASSERT_TRUE(report.success) << report.to_string();
  ASSERT_TRUE(deployment.has_value());
  EXPECT_EQ(report.device_hostname, "dusty-closet-sw");
  EXPECT_GE(report.steps.size(), 6u);
  EXPECT_FALSE(report.rolled_back);

  // The device got the per-port VLANs through the management plane.
  EXPECT_EQ(device_.config().ports.at(1).pvid, 101);
  EXPECT_EQ(device_.config().ports.at(4).pvid, 104);
  EXPECT_EQ(device_.config().ports.at(8).mode, PortMode::kTrunk);
  EXPECT_EQ(device_.config().ports.at(8).allowed_vlans,
            (std::set<VlanId>{101, 102, 103, 104}));

  // The rendered config is in the right dialect.
  const std::string& rendered = report.rendered_config;
  if (std::string(GetParam()) == "ios_like")
    EXPECT_NE(rendered.find("GigabitEthernet0/1"), std::string::npos);
  else
    EXPECT_NE(rendered.find("interface Ethernet1"), std::string::npos);

  // Finish the handshake, then verify real traffic flows end-to-end.
  network_.run();
  FlowKey key;
  key.eth_src = hosts_[0]->mac();
  key.eth_dst = hosts_[1]->mac();
  key.ip_src = hosts_[0]->ip();
  key.ip_dst = hosts_[1]->ip();
  hosts_[0]->send(make_udp(key, 128));
  network_.run();
  EXPECT_EQ(hosts_[1]->counters().rx_udp, 1u);

  // The report is printable and mentions every phase.
  const std::string text = report.to_string();
  EXPECT_NE(text.find("SUCCESS"), std::string::npos);
  EXPECT_NE(text.find("discovered"), std::string::npos);
  EXPECT_NE(text.find("committed"), std::string::npos);
  EXPECT_NE(text.find("connected SS_2"), std::string::npos);
}

TEST_P(ManagerTest, DefaultsToAllPortsWhenUnspecified) {
  Controller controller;
  controller.add_app<LearningSwitchApp>();
  HarmlessManager manager(driver_, device_, network_);
  MigrationRequest req;
  req.trunk_port = 8;  // access_ports empty -> 1..7
  auto [report, deployment] = manager.migrate(req, controller);
  ASSERT_TRUE(report.success) << report.to_string();
  EXPECT_EQ(report.port_map->size(), 7u);
  EXPECT_EQ(deployment->fabric().ss2().of_port_count(), 7u);
}

TEST_P(ManagerTest, RejectsUnknownTrunkPort) {
  Controller controller;
  HarmlessManager manager(driver_, device_, network_);
  MigrationRequest req = request();
  req.trunk_port = 99;
  auto [report, deployment] = manager.migrate(req, controller);
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(deployment.has_value());
  EXPECT_NE(report.failure.find("trunk port 99"), std::string::npos);
  // Device untouched.
  EXPECT_EQ(device_.config().ports.at(1).pvid, 1);
}

TEST_P(ManagerTest, RejectsUnknownAccessPort) {
  Controller controller;
  HarmlessManager manager(driver_, device_, network_);
  MigrationRequest req = request();
  req.access_ports.push_back(42);
  auto [report, deployment] = manager.migrate(req, controller);
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.failure.find("port 42"), std::string::npos);
}

TEST_P(ManagerTest, RejectsTrunkInAccessList) {
  Controller controller;
  HarmlessManager manager(driver_, device_, network_);
  MigrationRequest req = request();
  req.access_ports.push_back(8);  // trunk among access ports
  auto [report, deployment] = manager.migrate(req, controller);
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.failure.find("plan"), std::string::npos);
}

TEST_P(ManagerTest, VlanBaseIsConfigurable) {
  Controller controller;
  controller.add_app<LearningSwitchApp>();
  HarmlessManager manager(driver_, device_, network_);
  MigrationRequest req = request();
  req.vlan_base = 2000;
  auto [report, deployment] = manager.migrate(req, controller);
  ASSERT_TRUE(report.success) << report.to_string();
  EXPECT_EQ(device_.config().ports.at(1).pvid, 2001);
}

TEST_P(ManagerTest, BondedTrunksMigrateAndCarryTraffic) {
  Controller controller;
  controller.add_app<LearningSwitchApp>();
  HarmlessManager manager(driver_, device_, network_);
  MigrationRequest req;
  req.access_ports = {1, 2, 3, 4};
  req.trunk_ports = {7, 8};  // bonded: two legs to the S4 box
  auto [report, deployment] = manager.migrate(req, controller);
  ASSERT_TRUE(report.success) << report.to_string();

  // Both legacy ports became trunks, each carrying its VLAN subset.
  EXPECT_EQ(device_.config().ports.at(7).mode, PortMode::kTrunk);
  EXPECT_EQ(device_.config().ports.at(8).mode, PortMode::kTrunk);
  EXPECT_EQ(device_.config().ports.at(7).allowed_vlans, (std::set<VlanId>{101, 103}));
  EXPECT_EQ(device_.config().ports.at(8).allowed_vlans, (std::set<VlanId>{102, 104}));
  EXPECT_EQ(deployment->fabric().ss1().of_port_count(), 6u);  // 2 trunks + 4 patches

  // Cross-leg traffic: h1 (leg 0) -> h2 (leg 1) hairpins up one leg
  // and back down the other.
  network_.run();
  FlowKey key;
  key.eth_src = hosts_[0]->mac();
  key.eth_dst = hosts_[1]->mac();
  key.ip_src = hosts_[0]->ip();
  key.ip_dst = hosts_[1]->ip();
  hosts_[0]->send(make_udp(key, 128));
  network_.run();
  EXPECT_EQ(hosts_[1]->counters().rx_udp, 1u);

  // Trunk failure severs both legs.
  deployment->fabric().set_trunk_up(false);
  hosts_[0]->send(make_udp(key, 128));
  network_.run();
  EXPECT_EQ(hosts_[1]->counters().rx_udp, 1u);
}

TEST_P(ManagerTest, DecommissionRestoresLegacySwitching) {
  Controller controller;
  controller.add_app<LearningSwitchApp>();
  HarmlessManager manager(driver_, device_, network_);
  auto [report, deployment] = manager.migrate(request(), controller);
  ASSERT_TRUE(report.success) << report.to_string();
  network_.run();

  // Migrated: per-port VLANs in place.
  ASSERT_EQ(device_.config().ports.at(1).pvid, 101);

  const MigrationReport undo = manager.decommission(*deployment);
  ASSERT_TRUE(undo.success) << undo.to_string();
  EXPECT_TRUE(undo.rolled_back);

  // Factory config restored: everything back in VLAN 1.
  EXPECT_EQ(device_.config().ports.at(1).pvid, 1);
  EXPECT_EQ(device_.config().ports.at(8).mode, PortMode::kAccess);
  EXPECT_FALSE(deployment->fabric().trunk_up());

  // Hosts talk directly through the legacy switch again; the software
  // switches see nothing.
  const auto ss1_runs = deployment->fabric().ss1().counters().pipeline_runs;
  FlowKey key;
  key.eth_src = hosts_[0]->mac();
  key.eth_dst = hosts_[1]->mac();
  key.ip_src = hosts_[0]->ip();
  key.ip_dst = hosts_[1]->ip();
  hosts_[0]->send(make_udp(key, 128));
  network_.run();
  EXPECT_EQ(hosts_[1]->counters().rx_udp, 1u);
  EXPECT_EQ(deployment->fabric().ss1().counters().pipeline_runs, ss1_runs);
}

INSTANTIATE_TEST_SUITE_P(BothDialects, ManagerTest,
                         ::testing::Values("ios_like", "eos_like"));

TEST(ManagerReport, FailureRendering) {
  MigrationReport report;
  report.failure = "stage: boom";
  report.rolled_back = true;
  report.device_hostname = "sw";
  const std::string text = report.to_string();
  EXPECT_NE(text.find("FAILED: stage: boom"), std::string::npos);
  EXPECT_NE(text.find("rolled back"), std::string::npos);
}

}  // namespace
}  // namespace harmless::core

// Cost model tests: bill-of-materials arithmetic and the paper's
// headline shape — HARMLESS is the cheapest route to N SDN ports.
#include <gtest/gtest.h>

#include "harmless/cost_model.hpp"
#include "util/status.hpp"

namespace harmless::core {
namespace {

TEST(CostModel, ForkliftCountsSwitches) {
  CostModel model;
  const CostEstimate estimate = model.estimate(Strategy::kForkliftSdn, 48);
  ASSERT_EQ(estimate.bom.size(), 1u);
  EXPECT_EQ(estimate.bom[0].quantity, 1);
  EXPECT_DOUBLE_EQ(estimate.total_usd(), model.catalog().sdn_switch.price_usd);

  // 49 ports need a second switch (ceil).
  EXPECT_DOUBLE_EQ(model.estimate(Strategy::kForkliftSdn, 49).total_usd(),
                   2 * model.catalog().sdn_switch.price_usd);
}

TEST(CostModel, HarmlessAddsServerPerLegacySwitch) {
  CostModel model;
  const CostEstimate estimate = model.estimate(Strategy::kHarmless, 48);
  // server + NIC + cable, one of each for one legacy switch.
  double expected = model.catalog().server.price_usd + model.catalog().nic_10g.price_usd +
                    model.catalog().trunk_cable.price_usd;
  EXPECT_DOUBLE_EQ(estimate.total_usd(), expected);
  // 96 ports -> two of everything.
  EXPECT_DOUBLE_EQ(model.estimate(Strategy::kHarmless, 96).total_usd(), 2 * expected);
}

TEST(CostModel, PureSoftwareRespectsChassisPortDensity) {
  CostModel model;
  // 48 ports need 12 quad NICs; at 6 NICs (24 ports) per server, 2 servers.
  const CostEstimate estimate = model.estimate(Strategy::kPureSoftware, 48);
  double expected = 2 * model.catalog().server.price_usd + 12 * model.catalog().nic_quad_1g.price_usd;
  EXPECT_DOUBLE_EQ(estimate.total_usd(), expected);
}

TEST(CostModel, PaperShapeHarmlessCheapestAtEveryScale) {
  CostModel model;
  for (const int ports : {24, 48, 96, 192, 384}) {
    const double harmless_cost = model.estimate(Strategy::kHarmless, ports).total_usd();
    const double forklift = model.estimate(Strategy::kForkliftSdn, ports).total_usd();
    const double software = model.estimate(Strategy::kPureSoftware, ports).total_usd();
    EXPECT_LT(harmless_cost, forklift) << ports << " ports";
    EXPECT_LT(harmless_cost, software) << ports << " ports";
  }
}

TEST(CostModel, PerPortCostComputed) {
  CostModel model;
  const CostEstimate estimate = model.estimate(Strategy::kHarmless, 48);
  EXPECT_NEAR(estimate.usd_per_port(), estimate.total_usd() / 48.0, 1e-9);
  EXPECT_GT(estimate.usd_per_port(), 0);
}

TEST(CostModel, GreenfieldAddsLegacyHardware) {
  CostModel model;
  const double sunk = model.estimate(Strategy::kHarmless, 48, /*greenfield=*/false).total_usd();
  const double green = model.estimate(Strategy::kHarmless, 48, /*greenfield=*/true).total_usd();
  EXPECT_DOUBLE_EQ(green - sunk, model.catalog().legacy_switch.price_usd);
  // Even greenfield, HARMLESS undercuts the forklift with these prices.
  EXPECT_LT(green, model.estimate(Strategy::kForkliftSdn, 48).total_usd());
}

TEST(CostModel, InvalidPortCountThrows) {
  CostModel model;
  EXPECT_THROW(model.estimate(Strategy::kHarmless, 0), util::ConfigError);
  EXPECT_THROW(model.estimate(Strategy::kHarmless, -5), util::ConfigError);
}

TEST(CostModel, CustomCatalogFlowsThrough) {
  Catalog catalog;
  catalog.server.price_usd = 10'000;  // gold-plated servers
  CostModel model(catalog);
  EXPECT_GT(model.estimate(Strategy::kHarmless, 48).total_usd(), 10'000);
}

TEST(CostModel, RenderingMentionsStrategyAndTotal) {
  CostModel model;
  const std::string text = model.estimate(Strategy::kHarmless, 48).to_string();
  EXPECT_NE(text.find("HARMLESS"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
  EXPECT_STREQ(strategy_name(Strategy::kForkliftSdn), "forklift-COTS-SDN");
  EXPECT_STREQ(strategy_name(Strategy::kPureSoftware), "pure-software");
}

}  // namespace
}  // namespace harmless::core

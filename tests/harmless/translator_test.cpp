// Translator (SS_1) rule generation: exact Fig.-1 shape plus the
// round-trip property — trunk->patch untags, patch->trunk retags — for
// every mapping, executed on a real Pipeline.
#include <gtest/gtest.h>

#include "harmless/translator.hpp"
#include "net/build.hpp"
#include "openflow/pipeline.hpp"

namespace harmless::core {
namespace {

using namespace net;
using namespace openflow;

PortMap paper_map() {
  auto map = PortMap::make({1, 2, 3, 4}, 24);
  return *map;
}

Packet tagged_udp(VlanId vid) {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x02aa);
  key.eth_dst = MacAddr::from_u64(0x02bb);
  key.ip_src = Ipv4Addr(10, 0, 0, 1);
  key.ip_dst = Ipv4Addr(10, 0, 0, 2);
  Packet packet = make_udp(key, 100);
  vlan_push(packet.frame(), VlanTag{vid, 0, false});
  return packet;
}

TEST(Translator, GeneratesTwoRulesPerPortPlusMiss) {
  const PortMap map = paper_map();
  const TranslatorRules rules = make_translator_rules(map);
  EXPECT_EQ(rules.flow_mods.size(), 9u);  // 2*4 + miss
  EXPECT_EQ(rules.flow_mods.size(), rules.expected_count(map));
}

TEST(Translator, TrunkIngressRulesMatchVlanAndPopToPatch) {
  const TranslatorRules rules = make_translator_rules(paper_map());
  // First rule: in_port=1, vlan 101 -> pop, output patch 2.
  const FlowModMsg& rule = rules.flow_mods[0];
  EXPECT_EQ(rule.priority, 100);
  EXPECT_TRUE(rule.match.has(Field::kInPort));
  EXPECT_EQ(rule.match.value_of(Field::kInPort), 1u);
  EXPECT_EQ(rule.match.value_of(Field::kVlanVid), kVlanPresent | 101);
  ASSERT_EQ(rule.instructions.apply_actions.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<PopVlanAction>(rule.instructions.apply_actions[0]));
  EXPECT_EQ(std::get<OutputAction>(rule.instructions.apply_actions[1]).port, 2u);
}

TEST(Translator, PatchIngressRulesPushCorrectVlanToTrunk) {
  const TranslatorRules rules = make_translator_rules(paper_map());
  // Second rule: in_port=2 (patch for ss2:1) -> push vlan 101 -> trunk.
  const FlowModMsg& rule = rules.flow_mods[1];
  EXPECT_EQ(rule.match.value_of(Field::kInPort), 2u);
  ASSERT_EQ(rule.instructions.apply_actions.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<PushVlanAction>(rule.instructions.apply_actions[0]));
  const auto& set = std::get<SetFieldAction>(rule.instructions.apply_actions[1]);
  EXPECT_EQ(set.field, Field::kVlanVid);
  EXPECT_EQ(set.value & 0x0fff, 101u);
  EXPECT_EQ(std::get<OutputAction>(rule.instructions.apply_actions[2]).port, 1u);
}

TEST(Translator, MissEntryDropsExplicitly) {
  const TranslatorRules rules = make_translator_rules(paper_map());
  const FlowModMsg& miss = rules.flow_mods.back();
  EXPECT_EQ(miss.priority, 0);
  EXPECT_TRUE(miss.match.is_wildcard_all());
  EXPECT_TRUE(miss.instructions.apply_actions.empty());
  EXPECT_FALSE(miss.instructions.goto_table.has_value());
}

TEST(Translator, ToStringRendersFig1Table) {
  const std::string text = make_translator_rules(paper_map()).to_string();
  EXPECT_NE(text.find("Flow table of SS_1"), std::string::npos);
  EXPECT_NE(text.find("vlan_vid=101"), std::string::npos);
  EXPECT_NE(text.find("pop_vlan"), std::string::npos);
  EXPECT_NE(text.find("set_vlan_vid:104"), std::string::npos);
}

class TranslatorRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TranslatorRoundTrip, EveryMappingUntagsAndRetags) {
  std::vector<int> access_ports;
  for (int port = 1; port <= GetParam(); ++port) access_ports.push_back(port);
  auto map = PortMap::make(access_ports, GetParam() + 1);
  ASSERT_TRUE(map);

  Pipeline ss1(1);
  for (const FlowModMsg& mod : make_translator_rules(*map).flow_mods) {
    FlowEntry entry;
    entry.priority = mod.priority;
    entry.match = mod.match;
    entry.instructions = mod.instructions;
    ASSERT_TRUE(ss1.table(0).add(std::move(entry), 0).is_ok());
  }

  for (const MappedPort& mapped : map->ports()) {
    // Trunk -> patch: tagged frame pops to the right patch, untagged.
    PipelineResult down =
        ss1.run(tagged_udp(mapped.vlan), map->ss1_trunk_port(), 0);
    ASSERT_EQ(down.outputs.size(), 1u) << "vlan " << mapped.vlan;
    EXPECT_EQ(down.outputs[0].first, map->ss1_patch_port(mapped.ss2_port));
    EXPECT_FALSE(parse_packet(down.outputs[0].second).has_vlan());

    // Patch -> trunk: untagged frame gets this port's VLAN back.
    FlowKey key;
    key.eth_src = MacAddr::from_u64(0x02aa);
    key.eth_dst = MacAddr::from_u64(0x02bb);
    PipelineResult up =
        ss1.run(make_udp(key, 100), map->ss1_patch_port(mapped.ss2_port), 0);
    ASSERT_EQ(up.outputs.size(), 1u);
    EXPECT_EQ(up.outputs[0].first, map->ss1_trunk_port());
    const ParsedPacket parsed = parse_packet(up.outputs[0].second);
    ASSERT_TRUE(parsed.has_vlan());
    EXPECT_EQ(parsed.vlan_vid(), mapped.vlan);
  }

  // Unmapped VLAN on the trunk: dropped, never leaked.
  const VlanId foreign = static_cast<VlanId>(100 + GetParam() + 50);
  PipelineResult leak = ss1.run(tagged_udp(foreign), map->ss1_trunk_port(), 0);
  EXPECT_TRUE(leak.dropped());

  // Untagged frame on the trunk: also dropped.
  FlowKey key;
  key.eth_src = MacAddr::from_u64(0x02aa);
  key.eth_dst = MacAddr::from_u64(0x02bb);
  PipelineResult untagged = ss1.run(make_udp(key, 100), map->ss1_trunk_port(), 0);
  EXPECT_TRUE(untagged.dropped());
}

INSTANTIATE_TEST_SUITE_P(PortCounts, TranslatorRoundTrip, ::testing::Values(1, 2, 4, 8, 24));

TEST(TranslatorBonded, EachVlanUsesItsAssignedTrunkLeg) {
  auto map = PortMap::make_bonded({1, 2, 3, 4}, {9, 10});
  ASSERT_TRUE(map);

  Pipeline ss1(1);
  for (const FlowModMsg& mod : make_translator_rules(*map).flow_mods) {
    FlowEntry entry;
    entry.priority = mod.priority;
    entry.match = mod.match;
    entry.instructions = mod.instructions;
    ASSERT_TRUE(ss1.table(0).add(std::move(entry), 0).is_ok());
  }

  for (const MappedPort& mapped : map->ports()) {
    const std::uint32_t trunk = map->ss1_trunk_port(mapped.trunk_index);

    // Down: the tag arrives on its own trunk leg and pops to its patch.
    PipelineResult down = ss1.run(tagged_udp(mapped.vlan), trunk, 0);
    ASSERT_EQ(down.outputs.size(), 1u);
    EXPECT_EQ(down.outputs[0].first, map->ss1_patch_port(mapped.ss2_port));

    // A tag arriving on the *wrong* leg is dropped (per-leg VLAN sets).
    const std::uint32_t wrong_trunk = map->ss1_trunk_port(1 - mapped.trunk_index);
    PipelineResult misdirected = ss1.run(tagged_udp(mapped.vlan), wrong_trunk, 0);
    EXPECT_TRUE(misdirected.dropped());

    // Up: the patch return exits on the same assigned leg.
    FlowKey key;
    key.eth_src = MacAddr::from_u64(0x02aa);
    key.eth_dst = MacAddr::from_u64(0x02bb);
    PipelineResult up = ss1.run(make_udp(key, 100), map->ss1_patch_port(mapped.ss2_port), 0);
    ASSERT_EQ(up.outputs.size(), 1u);
    EXPECT_EQ(up.outputs[0].first, trunk);
  }
}

}  // namespace
}  // namespace harmless::core


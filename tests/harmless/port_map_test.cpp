// PortMap validation and bijection properties.
#include <gtest/gtest.h>

#include "harmless/port_map.hpp"

namespace harmless::core {
namespace {

TEST(PortMap, CanonicalPaperMapping) {
  // Fig. 1: access ports 1..4, trunk elsewhere, VLAN = 100 + port.
  auto map = PortMap::make({1, 2, 3, 4}, /*trunk_port=*/24);
  ASSERT_TRUE(map) << map.message();
  EXPECT_EQ(map->size(), 4u);
  EXPECT_EQ(map->vlan_for_legacy(1), 101);
  EXPECT_EQ(map->vlan_for_legacy(4), 104);
  EXPECT_EQ(map->ss2_for_legacy(1), 1u);
  EXPECT_EQ(map->legacy_for_vlan(102), 2);
  EXPECT_EQ(map->ss2_for_vlan(103), 3u);
  EXPECT_EQ(map->vlan_for_ss2(4), 104);
  EXPECT_EQ(map->trunk_port(), 24);
  EXPECT_FALSE(map->vlan_for_legacy(9).has_value());
  EXPECT_FALSE(map->legacy_for_vlan(999).has_value());
}

TEST(PortMap, Ss1PortLayout) {
  auto map = PortMap::make({1, 2, 3}, 24);
  ASSERT_TRUE(map);
  EXPECT_EQ(map->ss1_trunk_port(), 1u);
  EXPECT_EQ(map->ss1_patch_port(1), 2u);
  EXPECT_EQ(map->ss1_patch_port(3), 4u);
  EXPECT_EQ(map->ss1_port_count(), 4u);
}

TEST(PortMap, NonContiguousAccessPorts) {
  auto map = PortMap::make({3, 7, 19}, 24);
  ASSERT_TRUE(map);
  EXPECT_EQ(map->vlan_for_legacy(7), 107);
  EXPECT_EQ(map->ss2_for_legacy(3), 1u);   // SS_2 ports by list order
  EXPECT_EQ(map->ss2_for_legacy(19), 3u);
}

TEST(PortMap, RejectsTrunkAmongAccessPorts) {
  auto map = PortMap::make({1, 2, 24}, 24);
  EXPECT_FALSE(map);
  EXPECT_NE(map.message().find("trunk"), std::string::npos);
}

TEST(PortMap, RejectsDuplicates) {
  EXPECT_FALSE(PortMap::make({1, 1}, 24));
  auto dup_vlan = PortMap::make_explicit({{1, 101, 1}, {2, 101, 2}}, {24});
  EXPECT_FALSE(dup_vlan);
  EXPECT_NE(dup_vlan.message().find("duplicate VLAN"), std::string::npos);
  auto dup_ss2 = PortMap::make_explicit({{1, 101, 1}, {2, 102, 1}}, {24});
  EXPECT_FALSE(dup_ss2);
}

TEST(PortMap, RejectsInvalidNumbers) {
  EXPECT_FALSE(PortMap::make({}, 24));                       // empty
  EXPECT_FALSE(PortMap::make({0}, 24));                      // 0-based
  EXPECT_FALSE(PortMap::make({1}, 0));                       // bad trunk
  EXPECT_FALSE(PortMap::make({1}, 2, /*vlan_base=*/4094));   // vlan 4095
  EXPECT_FALSE(PortMap::make_explicit({{1, 0, 1}}, {24}));     // vlan 0
  EXPECT_FALSE(PortMap::make_explicit({{1, 101, 0}}, {24}));   // ss2 0
}

class PortMapBijection : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PortMapBijection, RoundTripsForEveryPortAndBase) {
  const auto [port_count, vlan_base] = GetParam();
  std::vector<int> access_ports;
  for (int port = 1; port <= port_count; ++port) access_ports.push_back(port);
  auto map = PortMap::make(access_ports, port_count + 1, vlan_base);
  ASSERT_TRUE(map) << map.message();

  for (int port = 1; port <= port_count; ++port) {
    const auto vlan = map->vlan_for_legacy(port);
    ASSERT_TRUE(vlan);
    EXPECT_EQ(map->legacy_for_vlan(*vlan), port);  // legacy <-> vlan
    const auto ss2 = map->ss2_for_vlan(*vlan);
    ASSERT_TRUE(ss2);
    EXPECT_EQ(map->vlan_for_ss2(*ss2), *vlan);     // vlan <-> ss2
    EXPECT_EQ(map->ss2_for_legacy(port), *ss2);    // legacy <-> ss2
    // SS_1 patch ports never collide with the trunk leg.
    EXPECT_GT(map->ss1_patch_port(*ss2), map->ss1_trunk_port());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PortMapBijection,
                         ::testing::Combine(::testing::Values(1, 4, 23, 47),
                                            ::testing::Values(100, 1000, 3000)));

TEST(PortMap, ToStringListsMappings) {
  auto map = PortMap::make({1, 2}, 24);
  ASSERT_TRUE(map);
  const std::string text = map->to_string();
  EXPECT_NE(text.find("port1<->vlan101<->ss2:1"), std::string::npos);
  EXPECT_NE(text.find("trunks={port24}"), std::string::npos);
}

TEST(PortMap, BondedTrunksRoundRobin) {
  auto map = PortMap::make_bonded({1, 2, 3, 4, 5}, {10, 11});
  ASSERT_TRUE(map) << map.message();
  EXPECT_EQ(map->trunk_count(), 2u);
  EXPECT_EQ(map->trunk_ports(), (std::vector<int>{10, 11}));
  // Round-robin: ss2 ports 1,3,5 -> trunk 0; 2,4 -> trunk 1.
  EXPECT_EQ(map->ports()[0].trunk_index, 0);
  EXPECT_EQ(map->ports()[1].trunk_index, 1);
  EXPECT_EQ(map->ports()[2].trunk_index, 0);
  EXPECT_EQ(map->ports()[4].trunk_index, 0);
  // SS_1 layout: trunk legs 1..2, patches 3..7.
  EXPECT_EQ(map->ss1_trunk_port(0), 1u);
  EXPECT_EQ(map->ss1_trunk_port(1), 2u);
  EXPECT_EQ(map->ss1_patch_port(1), 3u);
  EXPECT_EQ(map->ss1_port_count(), 7u);
}

TEST(PortMap, BondedValidation) {
  EXPECT_FALSE(PortMap::make_bonded({1, 2}, {}));            // no trunks
  EXPECT_FALSE(PortMap::make_bonded({1, 2}, {10, 10}));      // dup trunk
  EXPECT_FALSE(PortMap::make_bonded({1, 10}, {10, 11}));     // trunk as access
  auto bad_index = PortMap::make_explicit({{1, 101, 1, 5}}, {10});
  EXPECT_FALSE(bad_index);
  EXPECT_NE(bad_index.message().find("trunk index"), std::string::npos);
}

TEST(PortMap, BondedToStringShowsLegs) {
  auto map = PortMap::make_bonded({1, 2}, {10, 11});
  ASSERT_TRUE(map);
  const std::string text = map->to_string();
  EXPECT_NE(text.find("trunks={port10,port11}"), std::string::npos);
  EXPECT_NE(text.find("@t0"), std::string::npos);
  EXPECT_NE(text.find("@t1"), std::string::npos);
}

}  // namespace
}  // namespace harmless::core


// Fabric integration: the full Fig.-1 data path — hosts, legacy switch
// with per-port VLANs, trunk, SS_1 translator, patches, SS_2, SDN
// controller — plus failure injection.
#include <gtest/gtest.h>

#include "controller/apps/learning.hpp"
#include "controller/controller.hpp"
#include "harmless/fabric.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"

namespace harmless::core {
namespace {

using namespace net;
using controller::Controller;
using controller::LearningSwitchApp;
using legacy::LegacySwitch;
using legacy::PortConfig;
using legacy::PortMode;
using legacy::SwitchConfig;
using sim::Host;
using sim::LinkSpec;
using sim::Network;

/// The HARMLESS VLAN layout for `n` access ports + trunk on port n+1.
SwitchConfig harmless_legacy_config(int access_ports) {
  SwitchConfig config;
  config.hostname = "legacy-1";
  std::set<VlanId> vlans;
  for (int port = 1; port <= access_ports; ++port) {
    config.ports[port] = PortConfig{PortMode::kAccess, static_cast<VlanId>(100 + port),
                                    {},   std::nullopt,
                                    true, ""};
    vlans.insert(static_cast<VlanId>(100 + port));
  }
  config.ports[access_ports + 1] =
      PortConfig{PortMode::kTrunk, 1, vlans, std::nullopt, true, "trunk"};
  return config;
}

struct Rig {
  static constexpr int kAccessPorts = 4;
  Network network;
  LegacySwitch* legacy_switch;
  std::vector<Host*> hosts;
  std::optional<Fabric> fabric;
  Controller controller;
  LearningSwitchApp* app;

  explicit Rig(const FabricSpec& spec = {}) {
    legacy_switch =
        &network.add_node<LegacySwitch>("legacy", harmless_legacy_config(kAccessPorts));
    for (int i = 0; i < kAccessPorts; ++i) {
      Host& host = network.add_host("h" + std::to_string(i + 1),
                                    MacAddr::from_u64(0x020000000001ULL + i),
                                    Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i + 1)));
      network.connect(host, 0, *legacy_switch, static_cast<std::size_t>(i),
                      LinkSpec::gbps(1));
      hosts.push_back(&host);
    }
    auto map = PortMap::make({1, 2, 3, 4}, kAccessPorts + 1);
    fabric.emplace(Fabric::build(network, *legacy_switch, *map, spec));
    app = &controller.add_app<LearningSwitchApp>();
    controller.connect(fabric->control_channel(), "SS_2");
    network.run();  // handshake + miss entry
  }

  Packet udp(int from, int to) {
    FlowKey key;
    key.eth_src = hosts[from]->mac();
    key.eth_dst = hosts[to]->mac();
    key.ip_src = hosts[from]->ip();
    key.ip_dst = hosts[to]->ip();
    key.dst_port = 9000;
    return make_udp(key, 200);
  }
};

TEST(Fabric, BuildsPaperTopology) {
  Rig rig;
  EXPECT_EQ(rig.fabric->ss1().of_port_count(), 5u);  // trunk + 4 patches
  EXPECT_EQ(rig.fabric->ss2().of_port_count(), 4u);
  EXPECT_EQ(rig.fabric->ss1().pipeline().table(0).size(), 9u);  // translator rules
  EXPECT_GE(rig.fabric->ss2().pipeline().table(0).size(), 1u);  // controller miss entry
  EXPECT_TRUE(rig.fabric->trunk_up());
}

TEST(Fabric, HostToHostThroughFullHairpin) {
  Rig rig;
  // h1 -> h2: legacy tags 101 -> trunk -> SS_1 pops -> SS_2 (learning
  // app floods) -> SS_1 pushes -> trunk -> legacy untags -> hosts.
  rig.hosts[0]->send(rig.udp(0, 1));
  rig.network.run();
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, 1u);
  // The flood copy physically reached h3/h4 through their VLANs (their
  // NICs filtered it) — transparent L2 semantics preserved.
  EXPECT_EQ(rig.hosts[2]->counters().rx_filtered, 1u);
  EXPECT_EQ(rig.hosts[3]->counters().rx_filtered, 1u);

  // Reverse direction now unicasts through an installed flow.
  rig.hosts[1]->send(rig.udp(1, 0));
  rig.network.run();
  EXPECT_EQ(rig.hosts[0]->counters().rx_udp, 1u);
  EXPECT_EQ(rig.hosts[2]->counters().rx_filtered, 1u);  // no extra copy

  // One more forward packet punts once (installs the h2 flow)...
  rig.hosts[0]->send(rig.udp(0, 1));
  rig.network.run();
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, 2u);

  // ...after which steady state needs no controller involvement.
  const auto punts = rig.controller.stats().packet_ins;
  rig.hosts[0]->send(rig.udp(0, 1));
  rig.hosts[1]->send(rig.udp(1, 0));
  rig.network.run();
  EXPECT_EQ(rig.controller.stats().packet_ins, punts);
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, 3u);
}

TEST(Fabric, MultiCoreFabricForwardsAndBillsSteering) {
  // The full hairpin with 4 worker cores on both soft switches: the
  // sharded datapath must stay transparent end to end, and the
  // steering bill (rss_hash_ns per packet, multi-core only) must show
  // up on both switches. Core counters must tile the node totals.
  FabricSpec spec;
  spec.ingress.cores.cores = 4;
  Rig rig(spec);
  for (int round = 0; round < 3; ++round) {
    rig.hosts[0]->send(rig.udp(0, 1));
    rig.hosts[1]->send(rig.udp(1, 0));
    rig.network.run();
  }
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, 3u);
  EXPECT_EQ(rig.hosts[0]->counters().rx_udp, 3u);

  for (softswitch::SoftSwitch* ss : {&rig.fabric->ss1(), &rig.fabric->ss2()}) {
    EXPECT_EQ(ss->core_count(), 4u) << ss->name();
    EXPECT_GT(ss->counters().rss_steered, 0u) << ss->name();
    sim::SimNanos busy = 0;
    std::uint64_t packets = 0;
    std::size_t queues = 0;
    for (std::size_t core = 0; core < ss->core_count(); ++core) {
      const auto stats = ss->core_stats(core);
      busy += stats.busy_ns;
      packets += stats.packets;
      queues += stats.rx_queues;
    }
    EXPECT_EQ(busy, ss->busy_ns()) << ss->name();
    EXPECT_EQ(queues, ss->rx_queue_count()) << ss->name();
    EXPECT_GT(packets, 0u) << ss->name();
  }
}

TEST(Fabric, FramesArriveUntaggedAtHosts) {
  Rig rig;
  bool saw_tag = false;
  for (Host* host : rig.hosts)
    host->set_on_receive([&](const Packet&, const ParsedPacket& parsed) {
      saw_tag |= parsed.has_vlan();
    });
  rig.hosts[0]->send(rig.udp(0, 1));
  rig.network.run();
  EXPECT_FALSE(saw_tag);  // full data-plane transparency
}

TEST(Fabric, SsTwoSeesLegacyPortNumbers) {
  Rig rig;
  rig.hosts[2]->send(rig.udp(2, 0));  // from legacy access port 3
  rig.network.run();
  // The learning app (pure OF, knows nothing about VLANs) learned h3
  // on SS_2 port 3 — the translator preserved port identity.
  EXPECT_EQ(rig.app->lookup(rig.fabric->ss2().datapath_id(), rig.hosts[2]->mac()), 3u);
}

TEST(Fabric, ArpAndPingWorkEndToEnd) {
  Rig rig;
  rig.hosts[0]->arp_request(rig.hosts[1]->ip());
  rig.network.run();
  EXPECT_EQ(rig.hosts[0]->counters().rx_arp_reply, 1u);

  FlowKey key;
  key.eth_src = rig.hosts[0]->mac();
  key.eth_dst = rig.hosts[1]->mac();
  key.ip_src = rig.hosts[0]->ip();
  key.ip_dst = rig.hosts[1]->ip();
  rig.hosts[0]->send(make_icmp_echo(key, /*request=*/true, 1, 1));
  rig.network.run();
  EXPECT_EQ(rig.hosts[0]->counters().rx_icmp_echo_reply, 1u);
}

TEST(Fabric, PacketsTraverseThreeSwitchHopsEachWay) {
  Rig rig;
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);
  rig.hosts[0]->send(rig.udp(0, 1));
  rig.network.run();
  ASSERT_GE(recorder.completed(), 1u);
  // legacy -> SS_1 -> SS_2 -> SS_1 -> legacy = 5 switch services
  // (legacy twice, SS_1 twice, SS_2 once).
  EXPECT_EQ(recorder.hops().max(), 5.0);
}

TEST(Fabric, TrunkFailureStopsTrafficAndRecovers) {
  Rig rig;
  rig.hosts[0]->send(rig.udp(0, 1));
  rig.network.run();
  ASSERT_EQ(rig.hosts[1]->counters().rx_udp, 1u);

  rig.fabric->set_trunk_up(false);
  EXPECT_FALSE(rig.fabric->trunk_up());
  rig.hosts[0]->send(rig.udp(0, 1));
  rig.network.run();
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, 1u);  // nothing got through

  rig.fabric->set_trunk_up(true);
  rig.hosts[0]->send(rig.udp(0, 1));
  rig.network.run();
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, 2u);
}

TEST(Fabric, ForeignVlanFromLegacyNeverLeaksToSs2) {
  // A host crafting its own tagged frame: the legacy access port drops
  // it (802.1Q), so SS_1 never even sees it; defence in depth.
  Rig rig;
  Packet crafted = rig.udp(0, 1);
  vlan_push(crafted.frame(), VlanTag{999, 0, false});
  const auto runs_before = rig.fabric->ss1().counters().pipeline_runs;
  rig.hosts[0]->send(std::move(crafted));
  rig.network.run();
  EXPECT_EQ(rig.fabric->ss1().counters().pipeline_runs, runs_before);
  EXPECT_EQ(rig.hosts[1]->counters().rx_total, 0u);
}

}  // namespace
}  // namespace harmless::core

// Host behaviour tests over a direct host<->host cable: ARP and ICMP
// responders, UDP streams, the embedded HTTP client/server, latency
// recording.
#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace harmless::sim {
namespace {

using namespace net;

struct TwoHosts {
  Network network;
  Host* a;
  Host* b;
  TwoHosts() {
    a = &network.add_host("a", MacAddr::from_u64(0xa), Ipv4Addr(10, 0, 0, 1));
    b = &network.add_host("b", MacAddr::from_u64(0xb), Ipv4Addr(10, 0, 0, 2));
    network.connect(*a, 0, *b, 0, LinkSpec::gbps(1));
  }
};

TEST(Host, ArpRequestGetsReply) {
  TwoHosts rig;
  rig.a->arp_request(rig.b->ip());
  rig.network.run();
  EXPECT_EQ(rig.a->counters().rx_arp_reply, 1u);
  // The reply names b's MAC and IP.
  bool found = false;
  for (const auto& parsed : rig.a->rx_log()) {
    if (parsed.arp && parsed.arp->op == ArpOp::kReply) {
      EXPECT_EQ(parsed.arp->sender_mac, rig.b->mac());
      EXPECT_EQ(parsed.arp->sender_ip, rig.b->ip());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Host, ArpResponderCanBeDisabled) {
  TwoHosts rig;
  rig.b->set_arp_responder(false);
  rig.a->arp_request(rig.b->ip());
  rig.network.run();
  EXPECT_EQ(rig.a->counters().rx_arp_reply, 0u);
  EXPECT_EQ(rig.b->counters().rx_total, 1u);  // still delivered
}

TEST(Host, ArpForOtherIpIgnored) {
  TwoHosts rig;
  rig.a->arp_request(Ipv4Addr(10, 0, 0, 99));
  rig.network.run();
  EXPECT_EQ(rig.a->counters().rx_arp_reply, 0u);
}

TEST(Host, IcmpPingRoundTrip) {
  TwoHosts rig;
  FlowKey key;
  key.eth_src = rig.a->mac();
  key.eth_dst = rig.b->mac();
  key.ip_src = rig.a->ip();
  key.ip_dst = rig.b->ip();
  rig.a->send(make_icmp_echo(key, /*request=*/true, 1, 1));
  rig.network.run();
  EXPECT_EQ(rig.a->counters().rx_icmp_echo_reply, 1u);
}

TEST(Host, UdpStreamArrivesCompletely) {
  TwoHosts rig;
  rig.a->send_udp_stream(rig.b->mac(), rig.b->ip(), /*count=*/100, /*frame_size=*/200,
                         /*interval=*/10'000);
  rig.network.run();
  EXPECT_EQ(rig.b->counters().rx_udp, 100u);
  EXPECT_EQ(rig.a->counters().tx_total, 100u);
}

TEST(Host, HttpRequestServedWith200) {
  TwoHosts rig;
  rig.b->serve_http(80);
  rig.a->http_get(rig.b->mac(), rig.b->ip(), "intra.example");
  rig.network.run();
  EXPECT_EQ(rig.b->counters().http_requests_served, 1u);
  EXPECT_EQ(rig.a->counters().http_ok_received, 1u);
}

TEST(Host, HttpServerIgnoresWrongPort) {
  TwoHosts rig;
  rig.b->serve_http(8080);
  rig.a->http_get(rig.b->mac(), rig.b->ip(), "x", "/", /*server_port=*/80);
  rig.network.run();
  EXPECT_EQ(rig.b->counters().http_requests_served, 0u);
}

TEST(Host, RecorderMeasuresOneWayLatency) {
  TwoHosts rig;
  LatencyRecorder recorder;
  rig.a->set_recorder(&recorder);
  rig.b->set_recorder(&recorder);
  rig.a->send_udp_stream(rig.b->mac(), rig.b->ip(), 10, 125, 100'000);
  rig.network.run();
  EXPECT_EQ(recorder.completed(), 10u);
  // 125 B at 1G = 1000 ns serialization + 500 ns propagation.
  EXPECT_DOUBLE_EQ(recorder.latency().min(), 1500.0);
  EXPECT_DOUBLE_EQ(recorder.latency().max(), 1500.0);
  EXPECT_EQ(recorder.outstanding(), 0u);
}

TEST(Host, RecorderIgnoresUnknownIds) {
  LatencyRecorder recorder;
  net::Packet packet;
  packet.set_id(999);
  EXPECT_FALSE(recorder.complete(packet, 100));
}

TEST(Host, RxLogCapacityBounds) {
  TwoHosts rig;
  rig.b->set_rx_log_capacity(5);
  rig.a->send_udp_stream(rig.b->mac(), rig.b->ip(), 20, 100, 1000);
  rig.network.run();
  EXPECT_EQ(rig.b->rx_log().size(), 5u);
  EXPECT_EQ(rig.b->counters().rx_udp, 20u);
}

TEST(Host, OnReceiveHookSeesEveryPacket) {
  TwoHosts rig;
  int seen = 0;
  rig.b->set_on_receive([&](const net::Packet&, const ParsedPacket& parsed) {
    EXPECT_TRUE(parsed.udp || parsed.arp || parsed.icmp || parsed.tcp);
    ++seen;
  });
  rig.a->send_udp_stream(rig.b->mac(), rig.b->ip(), 7, 100, 1000);
  rig.network.run();
  EXPECT_EQ(seen, 7);
}

TEST(Network, EngineSharedAcrossNodes) {
  TwoHosts rig;
  EXPECT_EQ(rig.network.now(), 0);
  rig.a->send_udp_stream(rig.b->mac(), rig.b->ip(), 1, 1500, 0);
  rig.network.run();
  EXPECT_GT(rig.network.now(), 0);
  EXPECT_GE(rig.network.channels().size(), 2u);
}

}  // namespace
}  // namespace harmless::sim

// Simulator core tests: event ordering, channel timing math, the
// single-server queue of ServicedNode.
#include <gtest/gtest.h>

#include <functional>

#include "net/build.hpp"
#include "sim/event.hpp"
#include "sim/link.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "util/status.hpp"

namespace harmless::sim {
namespace {

using namespace net;

Packet sized_packet(std::size_t bytes) {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(1);
  key.eth_dst = MacAddr::from_u64(2);
  key.ip_src = Ipv4Addr(10, 0, 0, 1);
  key.ip_dst = Ipv4Addr(10, 0, 0, 2);
  return make_udp(key, bytes);
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, TiesBreakFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) engine.schedule_at(5, [&order, i] { order.push_back(i); });
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, PastSchedulesClampToNow) {
  Engine engine;
  engine.schedule_at(100, [&] {
    engine.schedule_at(50, [&] {
      // Runs "now" (at t=100), never in the past.
      EXPECT_EQ(engine.now(), 100);
    });
  });
  engine.run();
}

TEST(Engine, RunUntilLeavesLaterEvents) {
  Engine engine;
  int ran = 0;
  engine.schedule_at(10, [&] { ++ran; });
  engine.schedule_at(1000, [&] { ++ran; });
  engine.run_until(500);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(engine.now(), 500);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(ran, 2);
}

TEST(Engine, NestedSchedulingFromEvents) {
  Engine engine;
  int depth_reached = 0;
  std::function<void(int)> recurse = [&](int depth) {
    depth_reached = depth;
    if (depth < 5) engine.schedule_after(10, [&, depth] { recurse(depth + 1); });
  };
  engine.schedule_at(0, [&] { recurse(1); });
  engine.run();
  EXPECT_EQ(depth_reached, 5);
  EXPECT_EQ(engine.now(), 40);
}

TEST(Rate, SerializationMath) {
  // 1 Gb/s = 1 bit/ns: a 1500-byte frame takes 12000 ns.
  EXPECT_EQ(Rate::gbps(1).serialization_ns(1500), 12000);
  EXPECT_EQ(Rate::gbps(10).serialization_ns(1500), 1200);
  // 64 bytes at 10G: 51.2 ns -> ceil 52.
  EXPECT_EQ(Rate::gbps(10).serialization_ns(64), 52);
  EXPECT_EQ(Rate::mbps(100).serialization_ns(125), 10000);
}

TEST(Channel, DeliversAfterSerializationPlusPropagation) {
  Engine engine;
  Channel channel(engine, LinkSpec{Rate::gbps(1), 500, 16}, "t");
  SimNanos delivered_at = -1;
  channel.set_sink([&](net::Packet&&) { delivered_at = engine.now(); });
  channel.transmit(sized_packet(1000));
  engine.run();
  EXPECT_EQ(delivered_at, 8000 + 500);  // 1000B at 1G + 500ns prop
  EXPECT_EQ(channel.delivered().packets, 1u);
  EXPECT_EQ(channel.busy_ns(), 8000);
}

TEST(Channel, BackToBackPacketsSerialize) {
  Engine engine;
  Channel channel(engine, LinkSpec{Rate::gbps(1), 0, 16}, "t");
  std::vector<SimNanos> arrivals;
  channel.set_sink([&](net::Packet&&) { arrivals.push_back(engine.now()); });
  for (int i = 0; i < 3; ++i) channel.transmit(sized_packet(125));  // 1000ns each
  engine.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 1000);
  EXPECT_EQ(arrivals[1], 2000);  // waits for the transmitter
  EXPECT_EQ(arrivals[2], 3000);
}

TEST(Channel, DropTailWhenQueueFull) {
  Engine engine;
  Channel channel(engine, LinkSpec{Rate::gbps(1), 0, 2}, "t");
  std::size_t delivered = 0;
  channel.set_sink([&](net::Packet&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) channel.transmit(sized_packet(1500));
  engine.run();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(channel.drops(), 8u);
}

TEST(Channel, DownChannelDropsEverything) {
  Engine engine;
  Channel channel(engine, LinkSpec::gbps(1), "t");
  std::size_t delivered = 0;
  channel.set_sink([&](net::Packet&&) { ++delivered; });
  channel.set_up(false);
  channel.transmit(sized_packet(64));
  engine.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(channel.drops(), 1u);
  channel.set_up(true);
  channel.transmit(sized_packet(64));
  engine.run();
  EXPECT_EQ(delivered, 1u);
}

/// A ServicedNode that echoes everything back out the ingress port
/// with a fixed service time per packet.
class EchoNode : public ServicedNode {
 public:
  EchoNode(Engine& engine, SimNanos service_ns, std::size_t burst_size = 1,
           IngressSpec ingress = IngressSpec{.queue_capacity = 4})
      : ServicedNode(engine, "echo", ingress, burst_size), service_ns_(service_ns) {
    ensure_ports(1);
  }
  std::vector<SimNanos> service_times;
  std::function<void(int)> on_service;

 protected:
  SimNanos service(int in_port, net::Packet&& packet) override {
    service_times.push_back(engine_.now());
    if (on_service) on_service(in_port);
    emit(static_cast<std::size_t>(in_port), std::move(packet));
    return service_ns_;
  }

 private:
  SimNanos service_ns_;
};

TEST(ServicedNode, SerializesServiceAtFixedRate) {
  Engine engine;
  EchoNode node(engine, 100);  // burst_size 1: the classic single server
  // Inject 3 packets at t=0: service starts at 0, 100, 200.
  for (int i = 0; i < 3; ++i) {
    engine.schedule_at(0, [&] { node.handle(0, sized_packet(64)); });
  }
  engine.run();
  ASSERT_EQ(node.service_times.size(), 3u);
  EXPECT_EQ(node.service_times[0], 0);
  EXPECT_EQ(node.service_times[1], 100);
  EXPECT_EQ(node.service_times[2], 200);
  EXPECT_EQ(node.busy_ns(), 300);
  EXPECT_EQ(node.bursts_served(), 3u);
}

TEST(ServicedNode, BurstModeDrainsTheQueueInOneGulp) {
  Engine engine;
  EchoNode node(engine, 100, /*burst_size=*/4);
  std::vector<SimNanos> deliveries;
  Channel wire(engine, LinkSpec{Rate::gbps(100), 0, 16}, "echo-out");
  wire.set_sink([&](net::Packet&&) { deliveries.push_back(engine.now()); });
  node.port(0).attach(&wire);

  for (int i = 0; i < 3; ++i) {
    engine.schedule_at(0, [&] { node.handle(0, sized_packet(64)); });
  }
  engine.run();
  // One burst serves all 3 back to back at t=0; costs still sum.
  ASSERT_EQ(node.service_times.size(), 3u);
  for (const SimNanos at : node.service_times) EXPECT_EQ(at, 0);
  EXPECT_EQ(node.busy_ns(), 300);
  EXPECT_EQ(node.bursts_served(), 1u);
  // Outputs leave together when the burst completes (a tx burst).
  ASSERT_EQ(deliveries.size(), 3u);
  for (const SimNanos at : deliveries) EXPECT_GE(at, 300);
}

TEST(ServicedNode, BurstSizeCapsTheGulp) {
  Engine engine;
  EchoNode node(engine, 100, /*burst_size=*/2);
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 4; ++i) node.handle(0, sized_packet(64));
  });
  engine.run();
  // 4 packets, bursts of 2: gulps start at 0 and 200.
  ASSERT_EQ(node.service_times.size(), 4u);
  EXPECT_EQ(node.service_times[0], 0);
  EXPECT_EQ(node.service_times[1], 0);
  EXPECT_EQ(node.service_times[2], 200);
  EXPECT_EQ(node.service_times[3], 200);
  EXPECT_EQ(node.bursts_served(), 2u);
}

TEST(ServicedNode, BoundedQueueDrops) {
  Engine engine;
  EchoNode node(engine, 1000);
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 10; ++i) node.handle(0, sized_packet(64));
  });
  engine.run();
  // Capacity 4: the first is consumed by the drain scheduled at t=0
  // only after the burst fully lands, so exactly 4 survive.
  EXPECT_EQ(node.queue_drops(), 6u);
  EXPECT_EQ(node.service_times.size(), 4u);
}

TEST(ServicedNode, EmitOutsideServiceThrows) {
  Engine engine;
  struct Bad : ServicedNode {
    explicit Bad(Engine& engine) : ServicedNode(engine, "bad") { ensure_ports(1); }
    using ServicedNode::emit;  // expose for the test
    SimNanos service(int, net::Packet&&) override { return 0; }
  } node(engine);
  net::Packet packet = sized_packet(64);
  EXPECT_THROW(node.emit(0, std::move(packet)), util::ConfigError);
}

TEST(ServicedNode, RoundRobinSweepsPortsInsteadOfArrivalOrder) {
  Engine engine;
  IngressSpec ingress;
  ingress.queue_capacity = 64;
  ingress.scheduler.kind = SchedulerKind::kRoundRobin;
  EchoNode node(engine, 10, /*burst_size=*/8, ingress);
  node.ensure_ports(2);
  std::vector<int> served;

  // 4 packets on port 0, then 2 on port 1, all before the drain runs:
  // FCFS would serve 0,0,0,0,1,1 — RR must alternate while both
  // queues are backlogged.
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 4; ++i) node.handle(0, sized_packet(64));
    for (int i = 0; i < 2; ++i) node.handle(1, sized_packet(64));
  });
  node.on_service = [&](int in_port) { served.push_back(in_port); };
  engine.run();
  EXPECT_EQ(served, (std::vector<int>{0, 1, 0, 1, 0, 0}));
  EXPECT_EQ(node.bursts_served(), 1u);
}

TEST(ServicedNode, DrrSharesBytesNotPackets) {
  Engine engine;
  IngressSpec ingress;
  ingress.queue_capacity = 64;
  ingress.scheduler.kind = SchedulerKind::kDrr;
  ingress.scheduler.drr_quantum_bytes = 1500;
  EchoNode node(engine, 10, /*burst_size=*/32, ingress);
  node.ensure_ports(2);
  std::vector<int> served;

  // Port 0 queues 1500B hogs, port 1 queues 100B mice. A packet-fair
  // sweep would alternate 1:1; byte-fair DRR grants port 1 one MTU of
  // credit per visit — enough for many mice per hog.
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 4; ++i) node.handle(0, sized_packet(1500));
    for (int i = 0; i < 20; ++i) node.handle(1, sized_packet(100));
  });
  node.on_service = [&](int in_port) { served.push_back(in_port); };
  engine.run();
  ASSERT_EQ(served.size(), 24u);
  // First round: one 1500B from port 0, then 15 x 100B from port 1.
  std::size_t port1_in_first_16 = 0;
  for (std::size_t i = 0; i < 16; ++i) port1_in_first_16 += served[i] == 1 ? 1 : 0;
  EXPECT_EQ(served[0], 0);
  EXPECT_EQ(port1_in_first_16, 15u);
}

TEST(ServicedNode, WeightedDrrSplitsGoodputByPortQuanta) {
  Engine engine;
  IngressSpec ingress;
  ingress.queue_capacity = 1024;
  ingress.scheduler.kind = SchedulerKind::kDrr;
  ingress.scheduler.drr_quantum_bytes = 1500;
  // Operator policy: port 0 carries twice port 1's weight.
  ingress.scheduler.drr_port_quantum_bytes = {3000, 1500};
  EchoNode node(engine, 10, /*burst_size=*/32, ingress);
  node.ensure_ports(2);
  std::vector<int> served;

  // Symmetric overload: both ports arrive with identical 300-packet
  // backlogs of identical 100B frames, far more than one burst serves.
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 300; ++i) node.handle(0, sized_packet(100));
    for (int i = 0; i < 300; ++i) node.handle(1, sized_packet(100));
  });
  node.on_service = [&](int in_port) { served.push_back(in_port); };
  engine.run();

  // While both queues stay backlogged (neither 300-packet backlog
  // empties within the first 270 services at a 2:1 drain split), the
  // 2:1 byte quanta must yield a ~2:1 goodput split.
  ASSERT_GE(served.size(), 270u);
  std::size_t port0 = 0, port1 = 0;
  for (std::size_t i = 0; i < 270; ++i) (served[i] == 0 ? port0 : port1)++;
  ASSERT_GT(port1, 0u);
  EXPECT_NEAR(static_cast<double>(port0) / static_cast<double>(port1), 2.0, 0.2)
      << "port0=" << port0 << " port1=" << port1;
}

TEST(ServicedNode, PerPortBoundAttributesDropsToTheArrivingPort) {
  Engine engine;
  IngressSpec ingress;
  ingress.queue_capacity = 64;
  ingress.port_queue_capacity = 2;
  EchoNode node(engine, 100, /*burst_size=*/1, ingress);
  node.ensure_ports(2);
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 10; ++i) node.handle(0, sized_packet(64));
    node.handle(1, sized_packet(64));
  });
  engine.run();
  // Port 0 admits 2, drops 8; port 1's single packet is untouched.
  EXPECT_EQ(node.queue_drops(), 8u);
  EXPECT_EQ(node.rx_queue(0).drops(), 8u);
  EXPECT_EQ(node.rx_queue(1).drops(), 0u);
  EXPECT_EQ(node.service_times.size(), 3u);
  EXPECT_EQ(node.rx_queue(0).peak_depth(), 2u);
}

TEST(Node, PortOutOfRangeThrows) {
  Engine engine;
  EchoNode node(engine, 1);
  EXPECT_NO_THROW((void)node.port(0));
  EXPECT_THROW((void)node.port(1), util::ConfigError);
}

TEST(Port, UnwiredSendCountsDrop) {
  Engine engine;
  EchoNode node(engine, 1);
  node.port(0).send(sized_packet(64));
  EXPECT_EQ(node.port(0).tx_unwired_drops, 1u);
  EXPECT_EQ(node.port(0).tx.packets, 1u);
}

}  // namespace
}  // namespace harmless::sim

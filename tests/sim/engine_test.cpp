// Simulator core tests: event ordering, channel timing math, the
// single-server queue of ServicedNode.
#include <gtest/gtest.h>

#include <functional>

#include "net/build.hpp"
#include "sim/event.hpp"
#include "sim/link.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "util/status.hpp"

namespace harmless::sim {
namespace {

using namespace net;

Packet sized_packet(std::size_t bytes) {
  FlowKey key;
  key.eth_src = MacAddr::from_u64(1);
  key.eth_dst = MacAddr::from_u64(2);
  key.ip_src = Ipv4Addr(10, 0, 0, 1);
  key.ip_dst = Ipv4Addr(10, 0, 0, 2);
  return make_udp(key, bytes);
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, TiesBreakFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) engine.schedule_at(5, [&order, i] { order.push_back(i); });
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, PastSchedulesClampToNow) {
  Engine engine;
  engine.schedule_at(100, [&] {
    engine.schedule_at(50, [&] {
      // Runs "now" (at t=100), never in the past.
      EXPECT_EQ(engine.now(), 100);
    });
  });
  engine.run();
}

TEST(Engine, RunUntilLeavesLaterEvents) {
  Engine engine;
  int ran = 0;
  engine.schedule_at(10, [&] { ++ran; });
  engine.schedule_at(1000, [&] { ++ran; });
  engine.run_until(500);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(engine.now(), 500);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(ran, 2);
}

TEST(Engine, NestedSchedulingFromEvents) {
  Engine engine;
  int depth_reached = 0;
  std::function<void(int)> recurse = [&](int depth) {
    depth_reached = depth;
    if (depth < 5) engine.schedule_after(10, [&, depth] { recurse(depth + 1); });
  };
  engine.schedule_at(0, [&] { recurse(1); });
  engine.run();
  EXPECT_EQ(depth_reached, 5);
  EXPECT_EQ(engine.now(), 40);
}

TEST(Rate, SerializationMath) {
  // 1 Gb/s = 1 bit/ns: a 1500-byte frame takes 12000 ns.
  EXPECT_EQ(Rate::gbps(1).serialization_ns(1500), 12000);
  EXPECT_EQ(Rate::gbps(10).serialization_ns(1500), 1200);
  // 64 bytes at 10G: 51.2 ns -> ceil 52.
  EXPECT_EQ(Rate::gbps(10).serialization_ns(64), 52);
  EXPECT_EQ(Rate::mbps(100).serialization_ns(125), 10000);
}

TEST(Channel, DeliversAfterSerializationPlusPropagation) {
  Engine engine;
  Channel channel(engine, LinkSpec{Rate::gbps(1), 500, 16}, "t");
  SimNanos delivered_at = -1;
  channel.set_sink([&](net::Packet&&) { delivered_at = engine.now(); });
  channel.transmit(sized_packet(1000));
  engine.run();
  EXPECT_EQ(delivered_at, 8000 + 500);  // 1000B at 1G + 500ns prop
  EXPECT_EQ(channel.delivered().packets, 1u);
  EXPECT_EQ(channel.busy_ns(), 8000);
}

TEST(Channel, BackToBackPacketsSerialize) {
  Engine engine;
  Channel channel(engine, LinkSpec{Rate::gbps(1), 0, 16}, "t");
  std::vector<SimNanos> arrivals;
  channel.set_sink([&](net::Packet&&) { arrivals.push_back(engine.now()); });
  for (int i = 0; i < 3; ++i) channel.transmit(sized_packet(125));  // 1000ns each
  engine.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 1000);
  EXPECT_EQ(arrivals[1], 2000);  // waits for the transmitter
  EXPECT_EQ(arrivals[2], 3000);
}

TEST(Channel, DropTailWhenQueueFull) {
  Engine engine;
  Channel channel(engine, LinkSpec{Rate::gbps(1), 0, 2}, "t");
  std::size_t delivered = 0;
  channel.set_sink([&](net::Packet&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) channel.transmit(sized_packet(1500));
  engine.run();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(channel.drops(), 8u);
}

TEST(Channel, DownChannelDropsEverything) {
  Engine engine;
  Channel channel(engine, LinkSpec::gbps(1), "t");
  std::size_t delivered = 0;
  channel.set_sink([&](net::Packet&&) { ++delivered; });
  channel.set_up(false);
  channel.transmit(sized_packet(64));
  engine.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(channel.drops(), 1u);
  channel.set_up(true);
  channel.transmit(sized_packet(64));
  engine.run();
  EXPECT_EQ(delivered, 1u);
}

/// A ServicedNode that echoes everything back out the ingress port
/// with a fixed service time per packet.
class EchoNode : public ServicedNode {
 public:
  EchoNode(Engine& engine, SimNanos service_ns, std::size_t burst_size = 1,
           IngressSpec ingress = IngressSpec{.queue_capacity = 4})
      : ServicedNode(engine, "echo", ingress, burst_size), service_ns_(service_ns) {
    ensure_ports(1);
  }
  std::vector<SimNanos> service_times;
  std::function<void(int)> on_service;
  using ServicedNode::ensure_rx_queues;  // expose for the poll tests

 protected:
  SimNanos service(int in_port, net::Packet&& packet) override {
    service_times.push_back(engine_.now());
    if (on_service) on_service(in_port);
    emit(static_cast<std::size_t>(in_port), std::move(packet));
    return service_ns_;
  }

 private:
  SimNanos service_ns_;
};

TEST(ServicedNode, SerializesServiceAtFixedRate) {
  Engine engine;
  EchoNode node(engine, 100);  // burst_size 1: the classic single server
  // Inject 3 packets at t=0: service starts at 0, 100, 200.
  for (int i = 0; i < 3; ++i) {
    engine.schedule_at(0, [&] { node.handle(0, sized_packet(64)); });
  }
  engine.run();
  ASSERT_EQ(node.service_times.size(), 3u);
  EXPECT_EQ(node.service_times[0], 0);
  EXPECT_EQ(node.service_times[1], 100);
  EXPECT_EQ(node.service_times[2], 200);
  EXPECT_EQ(node.busy_ns(), 300);
  EXPECT_EQ(node.bursts_served(), 3u);
}

TEST(ServicedNode, BurstModeDrainsTheQueueInOneGulp) {
  Engine engine;
  EchoNode node(engine, 100, /*burst_size=*/4);
  std::vector<SimNanos> deliveries;
  Channel wire(engine, LinkSpec{Rate::gbps(100), 0, 16}, "echo-out");
  wire.set_sink([&](net::Packet&&) { deliveries.push_back(engine.now()); });
  node.port(0).attach(&wire);

  for (int i = 0; i < 3; ++i) {
    engine.schedule_at(0, [&] { node.handle(0, sized_packet(64)); });
  }
  engine.run();
  // One burst serves all 3 back to back at t=0; costs still sum.
  ASSERT_EQ(node.service_times.size(), 3u);
  for (const SimNanos at : node.service_times) EXPECT_EQ(at, 0);
  EXPECT_EQ(node.busy_ns(), 300);
  EXPECT_EQ(node.bursts_served(), 1u);
  // Outputs leave together when the burst completes (a tx burst).
  ASSERT_EQ(deliveries.size(), 3u);
  for (const SimNanos at : deliveries) EXPECT_GE(at, 300);
}

TEST(ServicedNode, BurstSizeCapsTheGulp) {
  Engine engine;
  EchoNode node(engine, 100, /*burst_size=*/2);
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 4; ++i) node.handle(0, sized_packet(64));
  });
  engine.run();
  // 4 packets, bursts of 2: gulps start at 0 and 200.
  ASSERT_EQ(node.service_times.size(), 4u);
  EXPECT_EQ(node.service_times[0], 0);
  EXPECT_EQ(node.service_times[1], 0);
  EXPECT_EQ(node.service_times[2], 200);
  EXPECT_EQ(node.service_times[3], 200);
  EXPECT_EQ(node.bursts_served(), 2u);
}

TEST(ServicedNode, BoundedQueueDrops) {
  Engine engine;
  EchoNode node(engine, 1000);
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 10; ++i) node.handle(0, sized_packet(64));
  });
  engine.run();
  // Capacity 4: the first is consumed by the drain scheduled at t=0
  // only after the burst fully lands, so exactly 4 survive.
  EXPECT_EQ(node.queue_drops(), 6u);
  EXPECT_EQ(node.service_times.size(), 4u);
}

TEST(ServicedNode, EmitOutsideServiceThrows) {
  Engine engine;
  struct Bad : ServicedNode {
    explicit Bad(Engine& engine) : ServicedNode(engine, "bad") { ensure_ports(1); }
    using ServicedNode::emit;  // expose for the test
    SimNanos service(int, net::Packet&&) override { return 0; }
  } node(engine);
  net::Packet packet = sized_packet(64);
  EXPECT_THROW(node.emit(0, std::move(packet)), util::ConfigError);
}

TEST(ServicedNode, RoundRobinSweepsPortsInsteadOfArrivalOrder) {
  Engine engine;
  IngressSpec ingress;
  ingress.queue_capacity = 64;
  ingress.scheduler.kind = SchedulerKind::kRoundRobin;
  EchoNode node(engine, 10, /*burst_size=*/8, ingress);
  node.ensure_ports(2);
  std::vector<int> served;

  // 4 packets on port 0, then 2 on port 1, all before the drain runs:
  // FCFS would serve 0,0,0,0,1,1 — RR must alternate while both
  // queues are backlogged.
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 4; ++i) node.handle(0, sized_packet(64));
    for (int i = 0; i < 2; ++i) node.handle(1, sized_packet(64));
  });
  node.on_service = [&](int in_port) { served.push_back(in_port); };
  engine.run();
  EXPECT_EQ(served, (std::vector<int>{0, 1, 0, 1, 0, 0}));
  EXPECT_EQ(node.bursts_served(), 1u);
}

TEST(ServicedNode, DrrSharesBytesNotPackets) {
  Engine engine;
  IngressSpec ingress;
  ingress.queue_capacity = 64;
  ingress.scheduler.kind = SchedulerKind::kDrr;
  ingress.scheduler.drr_quantum_bytes = 1500;
  EchoNode node(engine, 10, /*burst_size=*/32, ingress);
  node.ensure_ports(2);
  std::vector<int> served;

  // Port 0 queues 1500B hogs, port 1 queues 100B mice. A packet-fair
  // sweep would alternate 1:1; byte-fair DRR grants port 1 one MTU of
  // credit per visit — enough for many mice per hog.
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 4; ++i) node.handle(0, sized_packet(1500));
    for (int i = 0; i < 20; ++i) node.handle(1, sized_packet(100));
  });
  node.on_service = [&](int in_port) { served.push_back(in_port); };
  engine.run();
  ASSERT_EQ(served.size(), 24u);
  // First round: one 1500B from port 0, then 15 x 100B from port 1.
  std::size_t port1_in_first_16 = 0;
  for (std::size_t i = 0; i < 16; ++i) port1_in_first_16 += served[i] == 1 ? 1 : 0;
  EXPECT_EQ(served[0], 0);
  EXPECT_EQ(port1_in_first_16, 15u);
}

TEST(ServicedNode, WeightedDrrSplitsGoodputByPortQuanta) {
  Engine engine;
  IngressSpec ingress;
  ingress.queue_capacity = 1024;
  ingress.scheduler.kind = SchedulerKind::kDrr;
  ingress.scheduler.drr_quantum_bytes = 1500;
  // Operator policy: port 0 carries twice port 1's weight.
  ingress.scheduler.drr_port_quantum_bytes = {3000, 1500};
  EchoNode node(engine, 10, /*burst_size=*/32, ingress);
  node.ensure_ports(2);
  std::vector<int> served;

  // Symmetric overload: both ports arrive with identical 300-packet
  // backlogs of identical 100B frames, far more than one burst serves.
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 300; ++i) node.handle(0, sized_packet(100));
    for (int i = 0; i < 300; ++i) node.handle(1, sized_packet(100));
  });
  node.on_service = [&](int in_port) { served.push_back(in_port); };
  engine.run();

  // While both queues stay backlogged (neither 300-packet backlog
  // empties within the first 270 services at a 2:1 drain split), the
  // 2:1 byte quanta must yield a ~2:1 goodput split.
  ASSERT_GE(served.size(), 270u);
  std::size_t port0 = 0, port1 = 0;
  for (std::size_t i = 0; i < 270; ++i) (served[i] == 0 ? port0 : port1)++;
  ASSERT_GT(port1, 0u);
  EXPECT_NEAR(static_cast<double>(port0) / static_cast<double>(port1), 2.0, 0.2)
      << "port0=" << port0 << " port1=" << port1;
}

TEST(ServicedNode, PerPortBoundAttributesDropsToTheArrivingPort) {
  Engine engine;
  IngressSpec ingress;
  ingress.queue_capacity = 64;
  ingress.port_queue_capacity = 2;
  EchoNode node(engine, 100, /*burst_size=*/1, ingress);
  node.ensure_ports(2);
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 10; ++i) node.handle(0, sized_packet(64));
    node.handle(1, sized_packet(64));
  });
  engine.run();
  // Port 0 admits 2, drops 8; port 1's single packet is untouched.
  EXPECT_EQ(node.queue_drops(), 8u);
  EXPECT_EQ(node.rx_queue(0).drops(), 8u);
  EXPECT_EQ(node.rx_queue(1).drops(), 0u);
  EXPECT_EQ(node.service_times.size(), 3u);
  EXPECT_EQ(node.rx_queue(0).peak_depth(), 2u);
}

// ---- Multi-core service steps (CoreSpec) -----------------------------

TEST(MultiCore, SteeringFollowsPinMapThenRssPolicy) {
  CoreSpec spec;
  spec.cores = 4;
  spec.rss = RssPolicy::kStride;
  spec.pin_map = {2, kCoreUnpinned, 7};  // 7 wraps to 7 % 4 == 3
  EXPECT_EQ(spec.core_of(0), 2u);        // pinned
  EXPECT_EQ(spec.core_of(1), 1u);        // unpinned -> stride: 1 % 4
  EXPECT_EQ(spec.core_of(2), 3u);        // pinned mod cores
  EXPECT_EQ(spec.core_of(5), 1u);        // beyond the map -> stride
  // The hash policy must agree with the shared project mix (plus its
  // two finalizer rounds) — RSS and the flow cache key through the
  // same primitive by construction.
  spec.rss = RssPolicy::kHash;
  spec.pin_map.clear();
  std::uint64_t h = util::hash_u64(util::kHashSeed, 5);
  h = util::hash_u64(h, h >> 32);
  h = util::hash_u64(h, h >> 32);
  EXPECT_EQ(spec.core_of(5), static_cast<std::size_t>(h) % 4);
  // And it must NOT be a disguised stride: over the first 8 ports on 4
  // cores the map is visibly non-rotational (a rotation is what a
  // single unfinalized mix round degenerates to).
  bool is_rotation = false;
  for (std::size_t r = 0; r < 4 && !is_rotation; ++r) {
    bool matches = true;
    for (std::size_t q = 0; q < 8 && matches; ++q) matches = spec.core_of(q) == (q + r) % 4;
    is_rotation = matches;
  }
  EXPECT_FALSE(is_rotation);
}

TEST(MultiCore, CoresServeTheirOwnQueuesInOneLockstepStep) {
  Engine engine;
  IngressSpec ingress;
  ingress.queue_capacity = 64;
  ingress.cores.cores = 2;
  ingress.cores.rss = RssPolicy::kStride;  // port 0 -> core 0, port 1 -> core 1
  EchoNode node(engine, 100, /*burst_size=*/4, ingress);
  node.ensure_ports(2);

  // 4 packets per port at t=0: one step, both cores burst in parallel.
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 4; ++i) node.handle(0, sized_packet(64));
    for (int i = 0; i < 4; ++i) node.handle(1, sized_packet(64));
  });
  engine.run();

  ASSERT_EQ(node.core_count(), 2u);
  EXPECT_EQ(node.core_of_queue(0), 0u);
  EXPECT_EQ(node.core_of_queue(1), 1u);
  EXPECT_EQ(node.core_queue_count(0), 1u);
  EXPECT_EQ(node.core_queue_count(1), 1u);
  // All 8 served at t=0 (two parallel bursts of 4), where one core
  // would have needed two sequential steps.
  ASSERT_EQ(node.service_times.size(), 8u);
  for (const SimNanos at : node.service_times) EXPECT_EQ(at, 0);
  EXPECT_EQ(node.bursts_served(), 2u);
  EXPECT_EQ(node.core_bursts(0), 1u);
  EXPECT_EQ(node.core_bursts(1), 1u);
  EXPECT_EQ(node.core_packets(0), 4u);
  EXPECT_EQ(node.core_packets(1), 4u);
  // Busy time is total compute (sum over cores); each core billed its
  // own 400ns.
  EXPECT_EQ(node.core_busy_ns(0), 400);
  EXPECT_EQ(node.core_busy_ns(1), 400);
  EXPECT_EQ(node.busy_ns(), 800);
}

TEST(MultiCore, StepAdvancesByTheMakespanOfTheSlowestCore) {
  Engine engine;
  IngressSpec ingress;
  ingress.queue_capacity = 64;
  ingress.cores.cores = 2;
  ingress.cores.rss = RssPolicy::kStride;
  EchoNode node(engine, 100, /*burst_size=*/4, ingress);
  node.ensure_ports(2);

  // Core 0 gets 8 packets (two bursts), core 1 gets 1. The second step
  // starts only when step 1's slowest core (core 0: 400ns) finishes —
  // lockstep workers, not independent servers.
  engine.schedule_at(0, [&] {
    for (int i = 0; i < 8; ++i) node.handle(0, sized_packet(64));
    node.handle(1, sized_packet(64));
  });
  engine.run();

  ASSERT_EQ(node.service_times.size(), 9u);
  // Step 1 at t=0: core 0 serves 4, core 1 serves 1 (100ns, idles the
  // rest of the 400ns makespan). Step 2 at t=400: core 0's remainder.
  std::size_t at_0 = 0, at_400 = 0;
  for (const SimNanos at : node.service_times) {
    if (at == 0) ++at_0;
    if (at == 400) ++at_400;
  }
  EXPECT_EQ(at_0, 5u);
  EXPECT_EQ(at_400, 4u);
  EXPECT_EQ(node.core_busy_ns(0), 800);
  EXPECT_EQ(node.core_busy_ns(1), 100);
  EXPECT_EQ(node.busy_ns(), 900);
}

// ---- Adaptive burst sizing (SchedulerSpec::adaptive_burst) -----------

TEST(AdaptiveBurst, LightLoadTakesThePerPacketPathAndSkipsIdlePolls) {
  // Paced singles: backlog is 1 at every drain. Fixed burst-32 pays a
  // full poll sweep per (one-packet) burst; adaptive shrinks the
  // budget to 1 and takes the per-packet path — zero poll sweeps, the
  // idle-poll bill gone.
  auto run = [](bool adaptive) {
    Engine engine;
    IngressSpec ingress;
    ingress.queue_capacity = 64;
    ingress.scheduler.adaptive_burst = adaptive;
    EchoNode node(engine, 100, /*burst_size=*/32, ingress);
    node.ensure_ports(4);
    node.ensure_rx_queues(4);  // idle port density: 4 queues to sweep
    for (int i = 0; i < 10; ++i)
      engine.schedule_at(i * 10'000, [&node] { node.handle(0, sized_packet(64)); });
    engine.run();
    EXPECT_EQ(node.service_times.size(), 10u);
    return node.rx_polls();
  };
  EXPECT_EQ(run(/*adaptive=*/false), 10u * 4u);
  EXPECT_EQ(run(/*adaptive=*/true), 0u);
}

TEST(AdaptiveBurst, OverloadGrowsTheBudgetBackToFullBatching) {
  // 64 packets at once: adaptive must not stay timid — the first step
  // sees backlog 64 and runs the full burst_size budget, matching the
  // fixed-burst drain burst for burst.
  auto run = [](bool adaptive) {
    Engine engine;
    IngressSpec ingress;
    ingress.queue_capacity = 64;
    ingress.scheduler.adaptive_burst = adaptive;
    EchoNode node(engine, 100, /*burst_size=*/32, ingress);
    engine.schedule_at(0, [&node] {
      for (int i = 0; i < 64; ++i) node.handle(0, sized_packet(64));
    });
    engine.run();
    EXPECT_EQ(node.service_times.size(), 64u);
    return std::pair{node.bursts_served(), node.rx_polls()};
  };
  const auto fixed = run(/*adaptive=*/false);
  const auto adaptive = run(/*adaptive=*/true);
  EXPECT_EQ(adaptive.first, 2u);  // two full bursts of 32
  EXPECT_EQ(adaptive, fixed);     // identical batching (and poll bill)
}

TEST(AdaptiveBurst, BudgetTracksBacklogBetweenFloorAndBurstSize) {
  Engine engine;
  IngressSpec ingress;
  ingress.queue_capacity = 64;
  ingress.scheduler.adaptive_burst = true;
  ingress.scheduler.adaptive_min_burst = 4;  // floor above 1: always batched
  EchoNode node(engine, 100, /*burst_size=*/32, ingress);
  engine.schedule_at(0, [&node] {
    for (int i = 0; i < 2; ++i) node.handle(0, sized_packet(64));
  });
  engine.run();
  // Backlog 2 < floor 4: budget clamps to the floor — still a batched
  // burst (polls counted), served in one gulp.
  EXPECT_EQ(node.bursts_served(), 1u);
  EXPECT_EQ(node.rx_polls(), 1u);
  EXPECT_EQ(node.service_times.size(), 2u);
}

TEST(Node, PortOutOfRangeThrows) {
  Engine engine;
  EchoNode node(engine, 1);
  EXPECT_NO_THROW((void)node.port(0));
  EXPECT_THROW((void)node.port(1), util::ConfigError);
}

TEST(Port, UnwiredSendCountsDrop) {
  Engine engine;
  EchoNode node(engine, 1);
  node.port(0).send(sized_packet(64));
  EXPECT_EQ(node.port(0).tx_unwired_drops, 1u);
  EXPECT_EQ(node.port(0).tx.packets, 1u);
}

}  // namespace
}  // namespace harmless::sim

// Symmetric RSS properties: the hash is direction-insensitive, the
// (port, core) queue grid steers both directions of a flow to one
// core, and the asymmetric policies are untouched by the new variant.
#include <gtest/gtest.h>

#include "net/build.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "softswitch/soft_switch.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace harmless::sim {
namespace {

TEST(SymmetricHash, FlowHashIsDirectionInsensitive) {
  util::Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const auto ip_a = static_cast<std::uint32_t>(rng.below(UINT32_MAX));
    const auto ip_b = static_cast<std::uint32_t>(rng.below(UINT32_MAX));
    const auto port_a = static_cast<std::uint16_t>(rng.below(65536));
    const auto port_b = static_cast<std::uint16_t>(rng.below(65536));
    const auto proto = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_EQ(util::symmetric_flow_hash(ip_a, port_a, ip_b, port_b, proto),
              util::symmetric_flow_hash(ip_b, port_b, ip_a, port_a, proto));
    EXPECT_EQ(util::symmetric_pair_hash(ip_a, ip_b), util::symmetric_pair_hash(ip_b, ip_a));
  }
}

TEST(SymmetricHash, DirectionalityIsTheOnlyCollapse) {
  // Distinct unordered endpoint pairs should (virtually) never
  // collide; sample a few thousand and require uniqueness.
  util::Rng rng(43);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4000; ++i) {
    const auto h = util::symmetric_flow_hash(rng.below(UINT32_MAX), rng.below(65536),
                                             rng.below(UINT32_MAX), rng.below(65536), 6);
    EXPECT_TRUE(seen.insert(h).second) << "collision at i=" << i;
  }
}

TEST(CoreSpecPolicy, SymmetricGridMapsQueueIndexToItsCore) {
  CoreSpec spec;
  spec.cores = 4;
  spec.rss = RssPolicy::kSymmetric;
  // queue index = port * cores + core: core_of must return the encoded
  // core regardless of port.
  for (std::size_t port = 0; port < 8; ++port)
    for (std::size_t core = 0; core < 4; ++core)
      EXPECT_EQ(spec.core_of(port * 4 + core), core);
}

TEST(CoreSpecPolicy, AsymmetricPoliciesUnchangedBySymmetricVariant) {
  // kHash and kStride must behave exactly as before the kSymmetric
  // addition: stride is queue % cores, hash is the finalized mix, and
  // the pin map wins over both.
  CoreSpec stride;
  stride.cores = 3;
  stride.rss = RssPolicy::kStride;
  for (std::size_t q = 0; q < 12; ++q) EXPECT_EQ(stride.core_of(q), q % 3);

  CoreSpec hash;
  hash.cores = 3;
  hash.rss = RssPolicy::kHash;
  for (std::size_t q = 0; q < 12; ++q) {
    std::uint64_t h = util::hash_u64(util::kHashSeed, q);
    h = util::hash_u64(h, h >> 32);
    h = util::hash_u64(h, h >> 32);
    EXPECT_EQ(hash.core_of(q), static_cast<std::size_t>(h % 3));
  }

  CoreSpec pinned = stride;
  pinned.pin_map = {2, kCoreUnpinned, 7};  // 7 % 3 == 1
  EXPECT_EQ(pinned.core_of(0), 2u);
  EXPECT_EQ(pinned.core_of(1), 1u);  // falls back to stride
  EXPECT_EQ(pinned.core_of(2), 1u);  // 7 mod 3
}

// End-to-end: on a multi-core SoftSwitch with symmetric RSS, a flow
// and its exact reverse must be served by the same core even when they
// enter on different ports.
TEST(SymmetricRss, BothFlowDirectionsLandOnOneCore) {
  Network network;
  IngressSpec ingress;
  ingress.cores.cores = 4;
  ingress.cores.rss = RssPolicy::kSymmetric;
  auto& sw = network.add_node<softswitch::SoftSwitch>("sw", 0x51, 2, 2, true, true, 32, ingress);

  auto& a = network.add_host("a", net::MacAddr::from_u64(0xA), net::Ipv4Addr(10, 0, 0, 1));
  auto& b = network.add_host("b", net::MacAddr::from_u64(0xB), net::Ipv4Addr(10, 0, 0, 2));
  network.connect(a, 0, sw, 0, LinkSpec::gbps(1));
  network.connect(b, 0, sw, 1, LinkSpec::gbps(1));

  openflow::FlowModMsg out1;
  out1.table_id = 0;
  out1.priority = 10;
  out1.match.in_port(1);
  out1.instructions = openflow::apply({openflow::output(2)});
  ASSERT_TRUE(sw.install(out1).is_ok());
  openflow::FlowModMsg out2;
  out2.table_id = 0;
  out2.priority = 10;
  out2.match.in_port(2);
  out2.instructions = openflow::apply({openflow::output(1)});
  ASSERT_TRUE(sw.install(out2).is_ok());

  util::Rng rng(7);
  for (int flow = 0; flow < 20; ++flow) {
    std::uint64_t packets_before[4];
    for (std::size_t core = 0; core < 4; ++core)
      packets_before[core] = sw.core_stats(core).packets;

    net::FlowKey key;
    key.eth_src = a.mac();
    key.eth_dst = b.mac();
    key.ip_src = a.ip();
    key.ip_dst = b.ip();
    key.src_port = static_cast<std::uint16_t>(1024 + rng.below(60000));
    key.dst_port = static_cast<std::uint16_t>(1024 + rng.below(60000));
    a.send(net::make_udp(key, 100));
    net::FlowKey reverse;
    reverse.eth_src = b.mac();
    reverse.eth_dst = a.mac();
    reverse.ip_src = b.ip();
    reverse.ip_dst = a.ip();
    reverse.src_port = key.dst_port;
    reverse.dst_port = key.src_port;
    b.send(net::make_udp(reverse, 100));
    network.run();

    int cores_touched = 0;
    for (std::size_t core = 0; core < 4; ++core) {
      const std::uint64_t delta = sw.core_stats(core).packets - packets_before[core];
      if (delta != 0) {
        ++cores_touched;
        EXPECT_EQ(delta, 2u) << "flow " << flow << " split across cores";
      }
    }
    EXPECT_EQ(cores_touched, 1) << "flow " << flow;
  }
  EXPECT_EQ(a.counters().rx_udp, 20u);
  EXPECT_EQ(b.counters().rx_udp, 20u);
}

// cores == 1 collapses the symmetric grid to one queue per port; the
// datapath must behave exactly like the default single-core layout.
TEST(SymmetricRss, SingleCoreCollapsesToDefaultLayout) {
  auto deliver = [](RssPolicy policy) {
    Network network;
    IngressSpec ingress;
    ingress.cores.cores = 1;
    ingress.cores.rss = policy;
    auto& sw =
        network.add_node<softswitch::SoftSwitch>("sw", 0x52, 2, 2, true, true, 32, ingress);
    auto& a = network.add_host("a", net::MacAddr::from_u64(0xA), net::Ipv4Addr(10, 0, 0, 1));
    auto& b = network.add_host("b", net::MacAddr::from_u64(0xB), net::Ipv4Addr(10, 0, 0, 2));
    network.connect(a, 0, sw, 0, LinkSpec::gbps(1));
    network.connect(b, 0, sw, 1, LinkSpec::gbps(1));
    openflow::FlowModMsg mod;
    mod.table_id = 0;
    mod.priority = 10;
    mod.match.eth_dst(b.mac());
    mod.instructions = openflow::apply({openflow::output(2)});
    EXPECT_TRUE(sw.install(mod).is_ok());
    net::FlowKey key;
    key.eth_src = a.mac();
    key.eth_dst = b.mac();
    key.ip_src = a.ip();
    key.ip_dst = b.ip();
    key.src_port = 1111;
    key.dst_port = 2222;
    for (int i = 0; i < 5; ++i) a.send(net::make_udp(key, 100));
    network.run();
    return b.counters().rx_udp;
  };
  EXPECT_EQ(deliver(RssPolicy::kSymmetric), deliver(RssPolicy::kHash));
}

}  // namespace
}  // namespace harmless::sim

// Overload and failure-injection behaviour: where packets die when the
// offered load exceeds a component's capacity, and that every loss is
// accounted somewhere. These pin down the mechanics behind the E1
// (NDR) and E7 (oversubscription knee / collapse) results.
#include <gtest/gtest.h>

#include "bench/common.hpp"
#include "net/build.hpp"
#include "sim/network.hpp"

namespace harmless {
namespace {

using namespace net;
using bench::HarmlessRig;
using bench::NativeRig;
using bench::RigOptions;

TEST(Overload, SoftSwitchQueueDropsUnderSaturation) {
  // 64B at 10G arrive faster than the per-packet datapath can serve;
  // the bounded service queue must tail-drop, and delivery rate must
  // approximate service capacity, not the offered rate. (burst_size 1:
  // the batched datapath out-serves this feed — see the next test.)
  RigOptions options;
  options.access_link = sim::LinkSpec::gbps(10);
  options.burst_size = 1;
  NativeRig rig(options);
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);

  constexpr std::size_t kPackets = 20'000;
  rig.stream(0, 1, kPackets, 64, options.access_link.rate.serialization_ns(64));
  rig.network.run();

  EXPECT_GT(rig.datapath->queue_drops(), 0u);
  EXPECT_EQ(recorder.completed() + rig.datapath->queue_drops(), kPackets);
  // Dropped packets never complete: they stay outstanding in the
  // recorder, one for one.
  EXPECT_EQ(recorder.outstanding(), rig.datapath->queue_drops());

  // Delivered rate is far below offered (19 Mpps) and positive.
  const double pps = bench::measure(recorder, 64).pps;
  EXPECT_GT(pps, 1e6);
  EXPECT_LT(pps, 17e6);
}

TEST(Overload, BatchedDatapathAbsorbsTheSameFeed) {
  // The same 64B 10G feed against the burst-oriented datapath: burst
  // replay amortization lifts capacity above the offered rate, so the
  // service queue self-balances (bursts grow just enough to keep up)
  // and nothing tail-drops.
  RigOptions options;
  options.access_link = sim::LinkSpec::gbps(10);
  options.burst_size = 32;
  NativeRig rig(options);
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);

  constexpr std::size_t kPackets = 20'000;
  rig.stream(0, 1, kPackets, 64, options.access_link.rate.serialization_ns(64));
  rig.network.run();

  EXPECT_EQ(rig.datapath->queue_drops(), 0u);
  EXPECT_EQ(recorder.completed(), kPackets);
  // The loop really ran batched: far fewer service bursts than packets.
  EXPECT_LT(rig.datapath->counters().service_bursts,
            rig.datapath->counters().pipeline_runs / 2);
  EXPECT_GT(bench::measure(recorder, 64).pps, 17e6);
}

struct IsolationRun {
  std::uint64_t mouse_completed = 0;
  std::uint64_t mouse_port_drops = 0;     // rx-queue tail drops on the mouse's port
  std::uint64_t elephant_port_drops = 0;  // ditto on the elephant's port
};

/// Elephant on OF port 1 saturating the per-packet datapath ~1.6x,
/// mouse flow on OF port 2 at ~5% of line rate.
IsolationRun isolation_run(sim::SchedulerSpec scheduler, std::size_t port_queue_capacity) {
  RigOptions options;
  options.host_count = 4;
  options.access_link = sim::LinkSpec::gbps(10);
  options.burst_size = 1;  // the CPU-bound per-packet datapath: overload is real
  options.scheduler = scheduler;
  options.port_queue_capacity = port_queue_capacity;
  NativeRig rig(options);
  sim::LatencyRecorder mouse;
  rig.hosts[1]->set_recorder(&mouse);
  rig.hosts[3]->set_recorder(&mouse);

  constexpr std::size_t kElephant = 40'000;
  constexpr std::size_t kMice = 2'000;
  const sim::SimNanos line = options.access_link.rate.serialization_ns(64);
  rig.stream(0, 2, kElephant, 64, line);       // 19 Mpps offered, ~12 Mpps served
  rig.stream(1, 3, kMice, 64, line * 20);      // 5% of line: well under fair share
  rig.network.run();

  IsolationRun run;
  run.mouse_completed = mouse.completed();
  run.mouse_port_drops = rig.datapath->rx_queue_drops(2);
  run.elephant_port_drops = rig.datapath->rx_queue_drops(1);
  return run;
}

TEST(Overload, DrrIsolatesTheMousePortFromAnElephantOverload) {
  // The pre-refactor datapath (FCFS over the shared 1024-packet
  // buffer): the elephant's backlog owns the whole buffer, so the
  // mouse's packets tail-drop at admission even though the mouse asks
  // for 5% of capacity — head-of-line blocking as buffer monopoly.
  const IsolationRun fcfs = isolation_run({sim::SchedulerKind::kFcfs},
                                          /*port_queue_capacity=*/0);
  EXPECT_GT(fcfs.mouse_port_drops, 200u);
  EXPECT_LT(fcfs.mouse_completed, 2'000u);
  EXPECT_EQ(fcfs.mouse_completed + fcfs.mouse_port_drops, 2'000u);  // every loss accounted

  // DRR over per-port bounded queues: the elephant can only occupy its
  // own 256-slot queue, the mouse's queue stays near-empty, and its
  // flow rides through lossless while the elephant keeps tail-dropping
  // on its own port.
  const IsolationRun drr = isolation_run({sim::SchedulerKind::kDrr},
                                         /*port_queue_capacity=*/256);
  EXPECT_EQ(drr.mouse_port_drops, 0u);
  EXPECT_EQ(drr.mouse_completed, 2'000u);
  EXPECT_GT(drr.elephant_port_drops, 10'000u);
}

TEST(Overload, TrunkQueueIsTheBottleneckWhenOversubscribed) {
  // 4 hosts at 1G into a 2G trunk: the trunk serializer must be the
  // drop point; the switches themselves keep up.
  RigOptions options;
  options.host_count = 4;
  options.access_link = sim::LinkSpec::gbps(1);
  options.trunk_link = sim::LinkSpec::gbps(2);
  options.trunk_link.queue_capacity_packets = 64;
  HarmlessRig rig(options);

  for (int i = 0; i < 4; ++i)
    rig.stream(i, (i + 1) % 4, 2'000, 512,
               options.access_link.rate.serialization_ns(512));
  rig.network.run();

  std::uint64_t trunk_drops = 0;
  for (sim::Channel* channel : rig.network.find_channels("->SS_1"))
    trunk_drops += channel->drops();
  EXPECT_GT(trunk_drops, 0u);
  EXPECT_EQ(rig.fabric->ss1().queue_drops(), 0u);  // compute is not the limit
  EXPECT_EQ(rig.fabric->ss2().queue_drops(), 0u);
}

TEST(Overload, PacedLoadWithinCapacityLosesNothing) {
  // The converse property: at 80% of the trunk's rate nothing drops
  // anywhere on the whole hairpin path.
  RigOptions options;
  options.host_count = 2;
  options.access_link = sim::LinkSpec::gbps(1);
  options.trunk_link = sim::LinkSpec::gbps(10);
  HarmlessRig rig(options);
  sim::LatencyRecorder recorder;
  rig.hosts[0]->set_recorder(&recorder);
  rig.hosts[1]->set_recorder(&recorder);

  constexpr std::size_t kPackets = 5'000;
  const sim::SimNanos interval =
      options.access_link.rate.serialization_ns(512) * 5 / 4;  // 80% load
  rig.stream(0, 1, kPackets, 512, interval);
  rig.network.run();

  EXPECT_EQ(recorder.completed(), kPackets);
  for (const auto& channel : rig.network.channels()) EXPECT_EQ(channel->drops(), 0u)
      << channel->label();
}

TEST(Overload, DownedTrunkAccountsDropsOnTheChannel) {
  RigOptions options;
  options.host_count = 2;
  HarmlessRig rig(options);
  const auto rx_before = rig.hosts[1]->counters().rx_udp;  // warmup traffic
  rig.fabric->set_trunk_up(false);

  rig.stream(0, 1, 100, 128, 1'000);
  rig.network.run();

  std::uint64_t drops = 0;
  for (sim::Channel* channel : rig.network.find_channels("->SS_1"))
    drops += channel->drops();
  EXPECT_EQ(drops, 100u);
  EXPECT_EQ(rig.hosts[1]->counters().rx_udp, rx_before);
}

TEST(Overload, RecorderTracksInFlightLossesAsOutstanding) {
  sim::Network network;
  auto& a = network.add_host("a", MacAddr::from_u64(1), Ipv4Addr(10, 0, 0, 1));
  auto& b = network.add_host("b", MacAddr::from_u64(2), Ipv4Addr(10, 0, 0, 2));
  sim::LinkSpec thin = sim::LinkSpec::gbps(1);
  thin.queue_capacity_packets = 4;
  network.connect(a, 0, b, 0, thin);
  sim::LatencyRecorder recorder;
  a.set_recorder(&recorder);
  b.set_recorder(&recorder);

  // Burst of 20 at t=0 into a 4-deep queue: 16 lost at the NIC.
  for (int i = 0; i < 20; ++i) {
    FlowKey key;
    key.eth_src = a.mac();
    key.eth_dst = b.mac();
    key.ip_src = a.ip();
    key.ip_dst = b.ip();
    key.dst_port = 9;
    a.send(make_udp(key, 1500));
  }
  network.run();
  EXPECT_EQ(recorder.completed(), 4u);
  EXPECT_EQ(recorder.outstanding(), 16u);
}

}  // namespace
}  // namespace harmless

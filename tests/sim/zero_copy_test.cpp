// The zero-copy property: once the fast path is warm, forwarding a
// packet end to end — host emit, ingress queue, burst scheduler, flow
// cache, action apply, channel delivery, host receive — must never
// copy frame bytes. Packet is move-only and clone() is the only way to
// duplicate a frame; it counts every call, so frame_copies() staying
// flat across a steady-state run proves the whole hop chain moves one
// pooled buffer through.
#include <gtest/gtest.h>

#include "bench/common.hpp"
#include "net/packet.hpp"
#include "sim/network.hpp"

namespace harmless {
namespace {

using bench::HarmlessRig;
using bench::NativeRig;
using bench::RigOptions;

TEST(ZeroCopy, NativeUnicastFastPathNeverCopiesFrames) {
  RigOptions options;
  NativeRig rig(options);
  sim::LatencyRecorder recorder;
  for (sim::Host* host : rig.hosts) host->set_recorder(&recorder);

  // Warm every (src, dst) microflow + megaflow entry once.
  for (int i = 0; i < options.host_count; ++i)
    rig.stream(i, (i + 1) % options.host_count, 1, 64, 0);
  rig.network.run();
  const std::uint64_t warm_completed = recorder.completed();

  net::Packet::reset_frame_copies();
  constexpr std::size_t kPackets = 2'000;
  for (int i = 0; i < options.host_count; ++i)
    rig.stream(i, (i + 1) % options.host_count, kPackets, 64, 1'000);
  rig.network.run();

  EXPECT_EQ(recorder.completed(),
            warm_completed + kPackets * static_cast<std::size_t>(options.host_count));
  EXPECT_EQ(net::Packet::frame_copies(), 0u)
      << "a warmed unicast hop chain deep-copied frame bytes";
}

TEST(ZeroCopy, HarmlessFabricSteadyStateNeverCopiesFrames) {
  // The full migrated fabric — legacy hairpin, VLAN push/pop, two soft
  // switches — rewrites headers in place; steady-state unicast must
  // stay copy-free too. (The rig constructor already pre-learns MACs,
  // so no flood/clone happens after it returns.)
  RigOptions options;
  HarmlessRig rig(options);
  sim::LatencyRecorder recorder;
  for (sim::Host* host : rig.hosts) host->set_recorder(&recorder);

  // Bidirectional pairs (0<->1, 2<->3): the legacy hairpin learns a
  // host's MAC inside a peer's VLAN only from reverse traffic, so a
  // one-way ring would flood (and clone) at the legacy switch forever.
  // Warm both directions of each pair before counting.
  for (int i = 0; i < options.host_count; ++i) rig.stream(i, i ^ 1, 1, 64, 0);
  rig.network.run();
  const std::uint64_t warm_completed = recorder.completed();
  ASSERT_EQ(warm_completed, static_cast<std::size_t>(options.host_count));

  net::Packet::reset_frame_copies();
  const std::uint64_t flooded_before = rig.device->counters().flooded;
  constexpr std::size_t kPackets = 1'000;
  for (int i = 0; i < options.host_count; ++i) rig.stream(i, i ^ 1, kPackets, 64, 2'000);
  rig.network.run();

  EXPECT_EQ(recorder.completed(),
            warm_completed + kPackets * static_cast<std::size_t>(options.host_count));
  EXPECT_EQ(rig.device->counters().flooded, flooded_before)
      << "legacy switch flooded in steady state — MAC learning regressed";
  EXPECT_EQ(net::Packet::frame_copies(), 0u)
      << "steady-state fabric forwarding deep-copied frame bytes";
}

}  // namespace
}  // namespace harmless

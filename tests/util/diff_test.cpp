// Tests for the line-diff engine behind compare_config.
#include <gtest/gtest.h>

#include "util/diff.hpp"

namespace harmless::util {
namespace {

TEST(LineDiff, IdenticalInputsAreEmpty) {
  EXPECT_EQ(line_diff("a\nb\nc", "a\nb\nc"), "");
  EXPECT_EQ(line_diff("", ""), "");
}

TEST(LineDiff, SingleReplacement) {
  const std::string diff = line_diff("hostname sw\nvlan 1\nend", "hostname sw\nvlan 101\nend");
  EXPECT_NE(diff.find("- vlan 1\n"), std::string::npos);
  EXPECT_NE(diff.find("+ vlan 101\n"), std::string::npos);
  EXPECT_NE(diff.find("  hostname sw\n"), std::string::npos);
}

TEST(LineDiff, PureAddition) {
  const std::string diff = line_diff("a\nc", "a\nb\nc");
  EXPECT_NE(diff.find("+ b\n"), std::string::npos);
  EXPECT_EQ(diff.find("- "), std::string::npos);
}

TEST(LineDiff, PureRemoval) {
  const std::string diff = line_diff("a\nb\nc", "a\nc");
  EXPECT_NE(diff.find("- b\n"), std::string::npos);
  EXPECT_EQ(diff.find("+ "), std::string::npos);
}

TEST(LineDiff, FromEmptyIsAllAdditions) {
  const std::string diff = line_diff("", "x\ny");
  EXPECT_NE(diff.find("+ x\n"), std::string::npos);
  EXPECT_NE(diff.find("+ y\n"), std::string::npos);
}

TEST(LineDiff, ContextTrimsDistantLines) {
  const std::string before = "1\n2\n3\n4\n5\n6\n7\n8\n9";
  const std::string after = "1\n2\n3\n4\nX\n6\n7\n8\n9";
  const std::string diff = line_diff(before, after, /*context=*/1);
  EXPECT_NE(diff.find("- 5\n"), std::string::npos);
  EXPECT_NE(diff.find("+ X\n"), std::string::npos);
  EXPECT_NE(diff.find("  4\n"), std::string::npos);  // context line kept
  EXPECT_EQ(diff.find("  1\n"), std::string::npos);  // distant line elided
  EXPECT_NE(diff.find("...\n"), std::string::npos);  // elision marker
}

TEST(LineDiff, FullContextKeepsEverything) {
  const std::string diff = line_diff("1\n2\n3", "1\n2\nX");
  EXPECT_NE(diff.find("  1\n"), std::string::npos);
  EXPECT_NE(diff.find("  2\n"), std::string::npos);
}

TEST(LineDiff, CommonPrefixSuffixPreserved) {
  // Changes in the middle must not desync the tail.
  const std::string diff = line_diff("keep\nold1\nold2\nkeep2", "keep\nnew1\nkeep2");
  EXPECT_NE(diff.find("- old1\n"), std::string::npos);
  EXPECT_NE(diff.find("- old2\n"), std::string::npos);
  EXPECT_NE(diff.find("+ new1\n"), std::string::npos);
  EXPECT_NE(diff.find("  keep2\n"), std::string::npos);
}

}  // namespace
}  // namespace harmless::util

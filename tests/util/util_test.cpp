// Tests for util: RNG determinism/distribution, Histogram, Table,
// string helpers, Status/Result.
#include <gtest/gtest.h>

#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace harmless::util {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroBoundReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / kSamples, 100.0, 3.0);
}

// ----------------------------------------------------------- Histogram

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, MomentsAndQuantiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.p50(), 50.5, 0.6);
  EXPECT_NEAR(h.p99(), 99.0, 1.1);
  EXPECT_NEAR(h.stddev(), 29.0, 0.5);
}

TEST(Histogram, QuantileClamps) {
  Histogram h;
  h.add(5);
  EXPECT_DOUBLE_EQ(h.quantile(-1), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(2), 5.0);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.add(1);
  h.clear();
  EXPECT_TRUE(h.empty());
  h.add(7);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(RateCounter, Rates) {
  RateCounter counter;
  for (int i = 0; i < 1000; ++i) counter.add(125);  // 1000 pkts, 1 kb each
  EXPECT_DOUBLE_EQ(counter.pps(1'000'000'000), 1000.0);
  EXPECT_DOUBLE_EQ(counter.bps(1'000'000'000), 1'000'000.0);
  EXPECT_DOUBLE_EQ(counter.pps(0), 0.0);
}

// -------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyTokens) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, ParseU64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("12x", v));
}

TEST(Strings, SiFormat) {
  EXPECT_EQ(si_format(1500000.0, "pps"), "1.50 Mpps");
  EXPECT_EQ(si_format(999.0, "bps", 0), "999 bps");
  EXPECT_EQ(si_format(2.5e9, "bps", 1), "2.5 Gbps");
}

TEST(Strings, JoinAndLower) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(to_lower("AbC-9"), "abc-9");
}

// ---------------------------------------------------------------- Table

TEST(Table, RendersAlignedAscii) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name   |"), std::string::npos);
  EXPECT_NE(text.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ConfigError);
}

// -------------------------------------------------------- Status/Result

TEST(Status, OkAndError) {
  EXPECT_TRUE(Status::ok());
  const Status err = Status::error("boom");
  EXPECT_FALSE(err);
  EXPECT_EQ(err.message(), "boom");
  EXPECT_THROW(err.check(), ConfigError);
  EXPECT_NO_THROW(Status::ok().check());
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok);
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(7), 42);

  auto err = Result<int>::error("nope");
  EXPECT_FALSE(err);
  EXPECT_EQ(err.message(), "nope");
  EXPECT_EQ(err.value_or(7), 7);
  EXPECT_THROW(err.value(), ConfigError);
  EXPECT_FALSE(err.status().is_ok());
}

}  // namespace
}  // namespace harmless::util
